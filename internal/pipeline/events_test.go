package pipeline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/obs"
	"bettertogether/internal/queue"
	"bettertogether/internal/soc"
)

// eventsByKind buckets a stream's retained events.
func eventsByKind(s *obs.Stream) map[obs.Kind][]obs.Event {
	out := map[obs.Kind][]obs.Event{}
	for _, e := range s.Recent(0) {
		out[e.Kind] = append(out[e.Kind], e)
	}
	return out
}

// TestSimulateEventsDoNotPerturb pins the acceptance criterion that
// attaching the event stream changes no sim result bytes: the DES reads
// the clock for emission but never touches the RNG, so the Result must
// be bit-identical with and without a sink.
func TestSimulateEventsDoNotPerturb(t *testing.T) {
	app, _ := testApp(5, 3e6)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu", "little"}})

	bare := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 7})
	stream := obs.NewStream(4096)
	evented := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 7, Events: stream})

	// Golden pin: render both results and compare bytes.
	if a, b := fmt.Sprintf("%+v", bare), fmt.Sprintf("%+v", evented); a != b {
		t.Fatalf("event stream perturbed the simulation:\nbare:    %s\nevented: %s", a, b)
	}

	by := eventsByKind(stream)
	if n := len(by[obs.KindStageDone]); n != 25*5 {
		t.Fatalf("stage-done events = %d, want %d", n, 25*5)
	}
	if len(by[obs.KindRunStart]) != 1 || len(by[obs.KindRunEnd]) != 1 {
		t.Fatalf("run lifecycle events %d/%d, want 1/1",
			len(by[obs.KindRunStart]), len(by[obs.KindRunEnd]))
	}
	for _, e := range by[obs.KindStageDone] {
		if e.Stage == "" || e.Chunk < 0 || e.Task < 0 || e.Dur <= 0 {
			t.Fatalf("malformed sim stage-done event %+v", e)
		}
	}
}

// TestExecuteEmitsLifecycleEvents checks the real engine's emission:
// run-start first, run-end last, one stage-done per dispatch.
func TestExecuteEmitsLifecycleEvents(t *testing.T) {
	app, _ := testApp(3, 1e3)
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu"}})
	stream := obs.NewStream(1024)
	r := Execute(p, Options{Tasks: 8, Warmup: 2, Events: stream})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	all := stream.Recent(0)
	if len(all) == 0 {
		t.Fatal("no events emitted")
	}
	if all[0].Kind != obs.KindRunStart {
		t.Fatalf("first event %v, want run-start", all[0].Kind)
	}
	if last := all[len(all)-1]; last.Kind != obs.KindRunEnd {
		t.Fatalf("last event %v, want run-end", last.Kind)
	} else {
		if last.Task != len(r.Completions) {
			t.Fatalf("run-end completions %d, want %d", last.Task, len(r.Completions))
		}
		if last.Dur <= 0 {
			t.Fatalf("run-end duration %v", last.Dur)
		}
	}
	by := eventsByKind(stream)
	if n := len(by[obs.KindStageDone]); n != 10*3 {
		t.Fatalf("stage-done events = %d, want %d", n, 10*3)
	}
	for _, e := range by[obs.KindStageDone] {
		if e.Stage == "" || e.Chunk < 0 || e.Task < 0 || e.Dur <= 0 {
			t.Fatalf("malformed stage-done event %+v", e)
		}
	}
}

// TestPushTimedEmitsQueueStall exercises the dispatcher's push helper
// against a genuinely full queue. In-flight tasks never exceed edge
// capacity in a healthy run (the ring allocates buffers+1 slots for
// buffers objects), so the blocked path is the engine's safety net —
// drive it directly: fill the queue, push with a delayed consumer, and
// require a queue-stall event naming the edge with a real duration.
func TestPushTimedEmitsQueueStall(t *testing.T) {
	q := queue.NewSPSC[*core.TaskObject](1)
	task := core.NewTaskObject(nil, nil, nil)
	task.Reset(7)
	for i := 0; i < q.Cap(); i++ { // capacity rounds up: fill it completely
		if !q.TryPush(core.NewTaskObject(nil, nil, nil)) {
			t.Fatal("priming push failed")
		}
	}
	stream := obs.NewStream(16)
	popped := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		q.Pop()
		close(popped)
	}()
	pushTimed(q, task, nil, stream, 3)
	<-popped
	stalls := eventsByKind(stream)[obs.KindQueueStall]
	if len(stalls) != 1 {
		t.Fatalf("queue-stall events = %d, want 1", len(stalls))
	}
	e := stalls[0]
	if e.Chunk != 3 || e.Task != 7 {
		t.Fatalf("stall misattributed: %+v", e)
	}
	if e.Dur < time.Millisecond {
		t.Fatalf("stall duration %v, want >= the consumer delay", e.Dur)
	}

	// The unblocked path must stay silent.
	q.Pop() // make room so the next push takes the fast path
	pushTimed(q, core.NewTaskObject(nil, nil, nil), nil, stream, 3)
	if n := len(eventsByKind(stream)[obs.KindQueueStall]); n != 1 {
		t.Fatalf("fast-path push emitted a stall (total %d)", n)
	}
}

// TestExecuteEmitsPanicRecovered checks that a kernel panic surfaces as
// a panic-recovered event with stage attribution, alongside Result.Err.
func TestExecuteEmitsPanicRecovered(t *testing.T) {
	boom := func(to *core.TaskObject, par core.ParallelFor) {
		if to.Seq == 2 {
			panic("kernel exploded")
		}
	}
	ok := func(to *core.TaskObject, par core.ParallelFor) {}
	app := &core.Application{
		Name: "explosive",
		Stages: []core.Stage{
			{Name: "a", CPU: ok, GPU: ok, Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
			{Name: "b", CPU: boom, GPU: boom, Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
		},
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) },
	}
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu"}})
	stream := obs.NewStream(256)
	done := make(chan Result, 1)
	go func() { done <- Execute(p, Options{Tasks: 10, Warmup: 0, Events: stream}) }()
	select {
	case r := <-done:
		if r.Err == nil {
			t.Fatal("panic not surfaced in Result.Err")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline deadlocked after kernel panic")
	}
	recovered := eventsByKind(stream)[obs.KindPanicRecovered]
	if len(recovered) == 0 {
		t.Fatal("no panic-recovered event")
	}
	e := recovered[0]
	if e.Stage != "b" || e.Task != 2 || e.Detail == "" {
		t.Fatalf("panic event misattributed: %+v", e)
	}
}

// TestExecuteEventsUnderConcurrency runs several evented executions in
// parallel against one shared stream — the shape the multi-app runtime
// produces — and checks nothing races or is lost from the totals.
func TestExecuteEventsUnderConcurrency(t *testing.T) {
	stream := obs.NewStream(obs.DefaultStreamCapacity)
	sub := stream.Subscribe(0) // count-only subscriber, everything drops
	defer sub.Close()
	var wg sync.WaitGroup
	const runs = 4
	for i := 0; i < runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app, _ := testApp(3, 1e3)
			dev := soc.NewPixel7a()
			p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu", "little"}})
			sink := obs.WithSession(stream, fmt.Sprintf("run#%d", i))
			r := Execute(p, Options{Tasks: 6, Warmup: 0, Events: sink})
			if r.Err != nil {
				t.Errorf("run %d: %v", i, r.Err)
			}
		}(i)
	}
	wg.Wait()
	// Each run: 1 run-start + 18 stage-done + 1 run-end = 20, plus any
	// stalls. Total must be at least the guaranteed floor.
	if total := stream.Total(); total < runs*20 {
		t.Fatalf("stream total %d, want >= %d", total, runs*20)
	}
	for _, e := range stream.Recent(0) {
		if e.Session == "" {
			t.Fatalf("untagged event escaped WithSession: %+v", e)
		}
	}
}

// The two benchmarks below document the perturbation budget: an
// attached event stream must stay within noise of a bare run (the
// acceptance bar is <5% wall-clock). Compare with
//
//	go test ./internal/pipeline/ -bench 'BenchmarkExecute(Bare|Evented)'
func benchPlan(b *testing.B) *Plan {
	b.Helper()
	app, _ := testApp(4, 1e4)
	p, err := NewPlan(app, soc.NewPixel7a(), core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "little"}})
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkExecuteBare(b *testing.B) {
	p := benchPlan(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(p, Options{Tasks: 50, Warmup: 0})
	}
}

func BenchmarkExecuteEvented(b *testing.B) {
	p := benchPlan(b)
	s := obs.NewStream(obs.DefaultStreamCapacity)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Execute(p, Options{Tasks: 50, Warmup: 0, Events: s})
	}
}
