package pipeline

import (
	"context"
	"errors"
	"math"
	"testing"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
)

func TestByNameResolvesEngines(t *testing.T) {
	for _, name := range []string{"sim", "real"} {
		eng, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if eng.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, eng.Name())
		}
	}
	if _, err := ByName("warp"); err == nil {
		t.Error("ByName accepted unknown engine")
	}
}

// TestSimEngineMatchesSimulate pins the compatibility contract: the
// deprecated Simulate wrapper and SimEngine.Run are the same code path,
// so their results must be identical field by field.
func TestSimEngineMatchesSimulate(t *testing.T) {
	app, _ := testApp(4, 1e7)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"little", "big", "gpu", "gpu"}})
	opts := Options{Tasks: 25, Warmup: 3, Seed: 42}

	a := Simulate(p, opts)
	b := SimEngine{}.Run(context.Background(), p, opts)
	if len(a.Completions) != len(b.Completions) {
		t.Fatalf("completion counts differ: %d vs %d", len(a.Completions), len(b.Completions))
	}
	for i := range a.Completions {
		if a.Completions[i] != b.Completions[i] {
			t.Fatalf("completion %d differs: %v vs %v", i, a.Completions[i], b.Completions[i])
		}
	}
	if a.PerTask != b.PerTask || a.Elapsed != b.Elapsed || a.EnergyJ != b.EnergyJ {
		t.Errorf("aggregates differ: %+v vs %+v", a, b)
	}
}

func TestRealEngineRunsKernels(t *testing.T) {
	app, runs := testApp(3, 1e5)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu"}})
	r := RealEngine{}.Run(context.Background(), p, Options{Tasks: 8, Warmup: 1})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(r.Completions) != 8 {
		t.Fatalf("completions = %d, want 8", len(r.Completions))
	}
	if got, want := runs.Load(), int64(3*(8+1)); got != want {
		t.Errorf("kernel runs = %d, want %d", got, want)
	}
}

// TestEnginePreCanceledContext: both engines must refuse a context that
// is already canceled at entry without starting the run.
func TestEnginePreCanceledContext(t *testing.T) {
	app, runs := testApp(2, 1e5)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu"}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, eng := range []Engine{SimEngine{}, RealEngine{}} {
		r := eng.Run(ctx, p, Options{Tasks: 5})
		if !errors.Is(r.Err, context.Canceled) {
			t.Errorf("%s: Err = %v, want context.Canceled", eng.Name(), r.Err)
		}
		if len(r.Completions) != 0 {
			t.Errorf("%s: run started despite canceled ctx", eng.Name())
		}
	}
	if runs.Load() != 0 {
		t.Errorf("kernels ran despite canceled ctx: %d", runs.Load())
	}
}

// TestEngineRejectsInvalidPlan: validation lives in the shared driver,
// so a broken plan is rejected identically by both engines.
func TestEngineRejectsInvalidPlan(t *testing.T) {
	for _, eng := range []Engine{SimEngine{}, RealEngine{}} {
		r := eng.Run(context.Background(), &Plan{}, Options{Tasks: 5})
		if r.Err == nil {
			t.Errorf("%s: empty plan accepted", eng.Name())
		}
	}
}

// TestGPUPoolWidthOption: the option overrides the device's GPU lane
// count in the resolved pool width (visible through the metrics
// collector, which the shared driver labels for both engines).
func TestGPUPoolWidthOption(t *testing.T) {
	app, _ := testApp(2, 1e6)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"gpu", "gpu"}})
	opts := Options{Tasks: 6, GPUPoolWidth: 3}
	opts.Metrics = NewMetricsFor(p, opts)
	r := SimEngine{}.Run(context.Background(), p, opts)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if got := opts.Metrics.Pool(0).Width; got != 3 {
		t.Errorf("gpu pool width = %d, want GPUPoolWidth override 3", got)
	}
}

// TestBaseEnvSlowsSim: an external interference environment must inflate
// the simulated service times relative to an isolated run.
func TestBaseEnvSlowsSim(t *testing.T) {
	app, _ := testApp(3, 1e8)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "big"}})
	base := Simulate(p, Options{Tasks: 20, Warmup: 2, Seed: 7})
	env := soc.Env{}
	for _, pu := range dev.PUs {
		env.Add(pu.Class, soc.Load{MemIntensity: 1})
	}
	loaded := Simulate(p, Options{Tasks: 20, Warmup: 2, Seed: 7, BaseEnv: env})
	if !(loaded.PerTask > base.PerTask) || math.IsNaN(loaded.PerTask) {
		t.Errorf("BaseEnv did not slow the run: isolated %.6f, loaded %.6f",
			base.PerTask, loaded.PerTask)
	}
}
