package pipeline

import (
	"fmt"
	"time"

	"bettertogether/internal/core"
)

// PanicError reports a kernel panic recovered by the Real engine,
// attributed to the pipeline location that dispatched it. The engine
// shuts the ring down and returns this in Result.Err instead of crashing
// the process; errors.As against *PanicError recovers the attribution.
type PanicError struct {
	// Chunk and PU locate the dispatcher that ran the kernel.
	Chunk int
	PU    core.PUClass
	// Stage is the stage name, or "" if the panic struck outside a stage
	// body (e.g. in a buffer fence).
	Stage string
	// Task is the stream sequence number being processed.
	Task int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	where := fmt.Sprintf("chunk %d (%s)", e.Chunk, e.PU)
	if e.Stage != "" {
		where += fmt.Sprintf(" stage %q", e.Stage)
	}
	return fmt.Sprintf("pipeline: %s task %d kernel panicked: %v", where, e.Task, e.Value)
}

// ShutdownTimeoutError reports that dispatcher goroutines failed to join
// within Options.ShutdownTimeout after the run ended or was canceled —
// typically a kernel stuck in an unbounded loop. The stalled goroutines
// are leaked (there is no way to preempt them); the error makes the leak
// loud instead of silent.
type ShutdownTimeoutError struct {
	// Timeout is the deadline that expired.
	Timeout time.Duration
	// Stalled is how many dispatcher goroutines had not exited.
	Stalled int
}

// Error implements error.
func (e *ShutdownTimeoutError) Error() string {
	return fmt.Sprintf("pipeline: %d dispatcher(s) failed to join within %v; goroutines leaked",
		e.Stalled, e.Timeout)
}
