package pipeline

import (
	"context"
	"math"
	"math/rand"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/des"
	"bettertogether/internal/obs"
	"bettertogether/internal/soc"
	"bettertogether/internal/trace"
)

// simChunk is one pipeline station in the discrete-event execution.
type simChunk struct {
	idx    int
	pu     core.PUClass
	stages []int        // stage indices of the chunk
	queue  []simPending // waiting tasks, FIFO
	busy   bool

	// Current execution state.
	task     int
	stagePos int
	// noise is the per-stage multiplicative measurement/noise factor,
	// drawn once at stage start.
	noise float64
	// remaining is the unfinished fraction of the current stage (1 → 0).
	remaining float64
	// rate is the current progress rate in fractions/second under the
	// present interference environment.
	rate float64
	// lastUpdate is when remaining was last integrated.
	lastUpdate float64
	// stageStart is when the current stage was dispatched (for tracing).
	stageStart float64
	// version invalidates stale completion events after re-scheduling.
	version int64

	busySince float64
	busyTotal float64
	// mult is the current governed clock multiplier (for energy
	// integration); energyJ accumulates the chunk's busy energy.
	mult    float64
	energyJ float64
	// load is the memory intensity of the running stage, published to
	// other chunks' environments.
	load soc.Load
}

// simPending is one queued task in the discrete-event execution: its
// stream sequence number and when it entered the queue (virtual time),
// so metrics can attribute queue wait.
type simPending struct {
	seq int
	at  float64
}

// simSeconds converts a virtual-time interval to a Duration for the
// metrics histograms.
func simSeconds(sec float64) time.Duration {
	return time.Duration(sec * float64(time.Second))
}

// Simulate executes the plan on the discrete-event simulator.
//
// Deprecated: use SimEngine{}.Run, which routes through the shared
// engine driver. Simulate delegates there and its output is unchanged.
func Simulate(p *Plan, opts Options) Result {
	return SimEngine{}.Run(context.Background(), p, opts)
}

// simRun is the Sim engine's executor: the discrete-event loop over an
// already validated plan and resolved options. Stage progress integrates
// over the *actual* interference environment: each chunk's execution
// rate is re-evaluated from the SoC model every time any other chunk
// starts or stops executing. Unbalanced schedules therefore run partly
// isolated and partly contended — the exact effect that makes isolated
// profiling tables mispredict (Sec. 5.3) and that the gapness objective
// guards against. Options.BaseEnv additionally overlays resident
// co-runners from outside the plan onto every chunk's environment.
//
// ctx is unused here: the driver checks it at entry, and a started
// simulation always completes (virtual time is instant in wall time and
// the event timeline must stay deterministic).
func simRun(_ context.Context, p *Plan, opts Options) runOutcome {
	rng := rand.New(rand.NewSource(opts.Seed))
	eng := des.New()
	m := opts.Metrics
	nChunks := len(p.Chunks)

	chunks := make([]*simChunk, len(p.Chunks))
	for i, c := range p.Chunks {
		sc := &simChunk{idx: i, pu: c.PU}
		for s := c.Start; s < c.End; s++ {
			sc.stages = append(sc.stages, s)
		}
		chunks[i] = sc
	}

	total := opts.Warmup + opts.Tasks
	issued := 0
	var completions []float64
	var measureStart float64

	env := func(me int) soc.Env {
		e := soc.Env{}
		for class, load := range opts.BaseEnv {
			e[class] = load
		}
		for _, c := range chunks {
			if c.idx != me && c.busy {
				// Contiguity gives each class at most one chunk, so with
				// no BaseEnv this sets the entry exactly; with one, loads
				// on a shared class combine with saturation.
				e.Add(c.pu, c.load)
			}
		}
		return e
	}

	var tryStart func(c *simChunk)
	var finishStage func(c *simChunk)

	// integrate advances c's progress — and its energy — to the current
	// time.
	integrate := func(c *simChunk) {
		now := eng.Now()
		dt := now - c.lastUpdate
		c.remaining -= dt * c.rate
		if c.remaining < 0 {
			c.remaining = 0
		}
		c.energyJ += dt * p.Device.Power(c.pu, c.mult, true)
		c.lastUpdate = now
	}

	// schedule recomputes c's rate under the current environment and
	// (re)schedules its completion event.
	schedule := func(c *simChunk) {
		stage := p.App.Stages[c.stages[c.stagePos]]
		e := env(c.idx)
		c.mult = p.Device.Governor.Multiplier(c.pu, e.BusyClasses())
		dur := p.Device.Estimate(stage.Cost, c.pu, e) * c.noise
		if dur <= 0 {
			dur = 1e-12
		}
		c.rate = 1 / dur
		c.version++
		v := c.version
		eng.Schedule(c.remaining*dur, func() {
			if c.version == v {
				finishStage(c)
			}
		})
	}

	// reprice updates every other busy chunk after an environment change.
	reprice := func(except int) {
		for _, c := range chunks {
			if c.idx != except && c.busy {
				integrate(c)
				schedule(c)
			}
		}
	}

	startStage := func(c *simChunk) {
		stage := p.App.Stages[c.stages[c.stagePos]]
		c.load = soc.Load{MemIntensity: p.Device.Intensity(stage.Cost, c.pu)}
		c.noise = 1.0
		if p.Device.NoiseSigma > 0 {
			c.noise = math.Exp(p.Device.NoiseSigma * rng.NormFloat64())
		}
		c.remaining = 1
		c.lastUpdate = eng.Now()
		c.stageStart = eng.Now()
		schedule(c)
	}

	finishStage = func(c *simChunk) {
		integrate(c)
		if m != nil {
			m.StageDone(c.stages[c.stagePos], simSeconds(eng.Now()-c.stageStart))
		}
		if opts.Events != nil {
			// Purely observational: reads the event clock, touches no RNG,
			// so the virtual timeline is unchanged (pinned by test).
			e := obs.NewEvent(obs.KindStageDone)
			si := c.stages[c.stagePos]
			e.Chunk, e.Task = c.idx, c.task
			e.Stage = p.App.Stages[si].Name
			e.PU = string(c.pu)
			e.Dur = simSeconds(eng.Now() - c.stageStart)
			opts.Events.Emit(e)
		}
		if opts.Trace != nil {
			si := c.stages[c.stagePos]
			opts.Trace.Add(trace.Span{
				Chunk: c.idx, PU: c.pu,
				Stage: p.App.Stages[si].Name, StageIndex: si,
				Task: c.task, Start: c.stageStart, End: eng.Now(),
			})
		}
		c.stagePos++
		if c.stagePos < len(c.stages) {
			startStage(c)
			reprice(c.idx)
			return
		}
		c.busy = false
		c.busyTotal += eng.Now() - c.busySince
		task := c.task
		if c.idx == len(chunks)-1 {
			if task == opts.Warmup-1 {
				measureStart = eng.Now()
			}
			if task >= opts.Warmup {
				completions = append(completions, eng.Now())
			}
			if issued < total {
				chunks[0].queue = append(chunks[0].queue, simPending{issued, eng.Now()})
				if m != nil {
					m.QueueDepth(nChunks-1, len(chunks[0].queue))
				}
				issued++
				tryStart(chunks[0])
			}
		} else {
			next := chunks[c.idx+1]
			next.queue = append(next.queue, simPending{task, eng.Now()})
			if m != nil {
				m.QueueDepth(c.idx, len(next.queue))
			}
			tryStart(next)
		}
		tryStart(c)
		reprice(-1)
	}

	tryStart = func(c *simChunk) {
		if c.busy || len(c.queue) == 0 {
			return
		}
		head := c.queue[0]
		c.queue = c.queue[1:]
		if m != nil {
			m.QueueWait(((c.idx-1)%nChunks+nChunks)%nChunks, simSeconds(eng.Now()-head.at))
		}
		c.task = head.seq
		c.busy = true
		c.stagePos = 0
		c.busySince = eng.Now()
		startStage(c)
		reprice(c.idx)
	}

	prime := opts.Buffers
	if prime > total {
		prime = total
	}
	for i := 0; i < prime; i++ {
		chunks[0].queue = append(chunks[0].queue, simPending{issued, 0})
		issued++
	}
	if m != nil {
		m.QueueDepth(nChunks-1, len(chunks[0].queue))
	}
	tryStart(chunks[0])
	eng.Run()

	if opts.Warmup == 0 && len(completions) > 0 {
		measureStart = 0
	}
	busy := make([]float64, len(chunks))
	makespan := eng.Now()
	if makespan > 0 {
		for i, c := range chunks {
			busy[i] = c.busyTotal / makespan
		}
	}
	if m != nil {
		// Pool utilization, virtual time: a chunk occupies its class's
		// whole pool while busy (the dispatcher owns the lanes), so
		// busy lane-time is busyTotal × width aggregated per class.
		order := poolOrder(p)
		index := make(map[core.PUClass]int, len(order))
		for i, class := range order {
			index[class] = i
		}
		for _, c := range chunks {
			pool := m.Pool(index[c.pu])
			pool.AddBusy(simSeconds(c.busyTotal * float64(pool.Width)))
		}
		m.SetElapsed(simSeconds(makespan))
	}
	out := runOutcome{completions: completions, measureStart: measureStart, chunkBusy: busy}

	// Energy: busy energy accumulated per chunk, plus idle power for
	// every PU's remaining time, plus the uncore floor. PU classes not
	// used by the schedule idle for the entire run.
	if makespan > 0 {
		energy := p.Device.UncoreWatts * makespan
		busySec := map[core.PUClass]float64{}
		for _, c := range chunks {
			energy += c.energyJ
			busySec[c.pu] += c.busyTotal
		}
		for _, class := range p.Device.Classes() {
			idle := makespan - busySec[class]
			if idle > 0 {
				energy += p.Device.Power(class, 1, false) * idle
			}
		}
		out.energyJ = energy
		out.energyPerTaskJ = energy / float64(total)
		out.avgWatts = energy / makespan
	}
	return out
}
