package pipeline

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/soc"
	"bettertogether/internal/trace"
)

// testApp builds a synthetic application with per-stage costs but
// countable no-op kernels.
func testApp(nStages int, flops float64) (*core.Application, *atomic.Int64) {
	var runs atomic.Int64
	stages := make([]core.Stage, nStages)
	for i := range stages {
		kern := func(to *core.TaskObject, par core.ParallelFor) {
			par(64, func(lo, hi int) {})
			runs.Add(1)
		}
		stages[i] = core.Stage{
			Name: string(rune('a' + i)),
			CPU:  kern, GPU: kern,
			Cost: core.CostSpec{
				FLOPs: flops, Bytes: flops / 4, ParallelFraction: 0.99,
				Divergence: 0.1, Irregularity: 0.1, WorkItems: 1 << 14,
			},
		}
	}
	app := &core.Application{
		Name:   "synthetic",
		Stages: stages,
		NewTask: func() *core.TaskObject {
			return core.NewTaskObject(nil, nil, nil)
		},
	}
	return app, &runs
}

func mustPlan(t *testing.T, app *core.Application, dev *soc.Device, s core.Schedule) *Plan {
	t.Helper()
	p, err := NewPlan(app, dev, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewPlanValidates(t *testing.T) {
	app, _ := testApp(4, 1e6)
	dev := soc.NewPixel7a()
	if _, err := NewPlan(app, dev, core.Schedule{Assign: []core.PUClass{"big", "big"}}); err == nil {
		t.Error("wrong-length schedule accepted")
	}
	if _, err := NewPlan(app, dev, core.Schedule{
		Assign: []core.PUClass{"big", "gpu", "big", "gpu"}}); err == nil {
		t.Error("contiguity violation accepted")
	}
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu"}})
	if len(p.Chunks) != 2 {
		t.Fatalf("chunks = %v", p.Chunks)
	}
	if p.Backend(0) != core.BackendCPU || p.Backend(1) != core.BackendGPU {
		t.Error("backends wrong")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	app, _ := testApp(6, 5e6)
	dev := soc.NewPixel7a()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu", "gpu", "little"}}
	p := mustPlan(t, app, dev, s)
	a := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 42})
	b := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 42})
	if a.PerTask != b.PerTask || a.Elapsed != b.Elapsed {
		t.Errorf("same seed, different results: %v vs %v", a, b)
	}
	c := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 43})
	if a.PerTask == c.PerTask {
		t.Error("different seeds should perturb noise")
	}
}

func TestSimulateCompletionCountAndMonotonicity(t *testing.T) {
	app, _ := testApp(5, 2e6)
	dev := soc.NewJetson()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "big", "gpu", "gpu"}}
	p := mustPlan(t, app, dev, s)
	r := Simulate(p, Options{Tasks: 30, Warmup: 3, Seed: 1})
	if len(r.Completions) != 30 {
		t.Fatalf("completions = %d, want 30", len(r.Completions))
	}
	for i := 1; i < len(r.Completions); i++ {
		if r.Completions[i] <= r.Completions[i-1] {
			t.Fatal("completions not strictly increasing")
		}
	}
	if r.PerTask <= 0 || r.Elapsed <= 0 {
		t.Errorf("degenerate metrics: %v", r)
	}
	if len(r.ChunkBusy) != 2 {
		t.Fatalf("chunk busy = %v", r.ChunkBusy)
	}
	for i, b := range r.ChunkBusy {
		if b <= 0 || b > 1 {
			t.Errorf("chunk %d busy fraction %v", i, b)
		}
	}
}

func TestSimulateSteadyStatePeriodBounds(t *testing.T) {
	// With noise disabled, the steady-state period must lie between the
	// bottleneck chunk's isolated service time and its fully-interfered
	// service time: the realized environment is a duty-cycled mix of the
	// two, which is precisely the effect the interference-aware profiler
	// exists to capture.
	app, _ := testApp(4, 8e6)
	dev := soc.NewJetson()
	dev.NoiseSigma = 0
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu"}}
	p := mustPlan(t, app, dev, s)
	r := Simulate(p, Options{Tasks: 40, Warmup: 10, Seed: 1})

	cost := app.Stages[0].Cost
	envB := soc.Env{core.ClassGPU: {MemIntensity: dev.Intensity(cost, core.ClassGPU)}}
	envG := soc.Env{core.ClassBig: {MemIntensity: dev.Intensity(cost, core.ClassBig)}}
	isoBig := 2 * dev.Estimate(cost, core.ClassBig, nil)
	isoGPU := 2 * dev.Estimate(cost, core.ClassGPU, nil)
	heavyBig := 2 * dev.Estimate(cost, core.ClassBig, envB)
	heavyGPU := 2 * dev.Estimate(cost, core.ClassGPU, envG)
	lower := math.Max(isoBig, isoGPU)
	upper := math.Max(heavyBig, heavyGPU)
	if r.PerTask < lower*0.999 || r.PerTask > upper*1.001 {
		t.Errorf("steady-state period %.4gms outside [%.4g, %.4g]ms",
			r.PerTask*1e3, lower*1e3, upper*1e3)
	}
	// The bottleneck chunk must be (nearly) continuously busy.
	busiest := math.Max(r.ChunkBusy[0], r.ChunkBusy[1])
	if busiest < 0.95 {
		t.Errorf("bottleneck busy fraction %.3f, want ~1", busiest)
	}
}

func TestSimulateExtremeImbalanceRunsBottleneckIsolated(t *testing.T) {
	// When the other chunk is orders of magnitude faster, the bottleneck
	// executes essentially alone and the period converges to its
	// *isolated* service time — the regime where interference-heavy
	// profiling would overpredict, motivating the gapness filter.
	stages := make([]core.Stage, 2)
	kern := func(to *core.TaskObject, par core.ParallelFor) {}
	heavy := core.CostSpec{FLOPs: 5e7, Bytes: 1e6, ParallelFraction: 0.99,
		Divergence: 0.1, Irregularity: 0.1, WorkItems: 1 << 16}
	tiny := heavy
	tiny.FLOPs, tiny.Bytes = 1e3, 1e2
	stages[0] = core.Stage{Name: "heavy", CPU: kern, GPU: kern, Cost: heavy}
	stages[1] = core.Stage{Name: "tiny", CPU: kern, GPU: kern, Cost: tiny}
	app := &core.Application{Name: "imbalanced", Stages: stages,
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) }}
	dev := soc.NewJetson()
	dev.NoiseSigma = 0
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu"}})
	r := Simulate(p, Options{Tasks: 40, Warmup: 10, Seed: 1})
	iso := dev.Estimate(heavy, core.ClassBig, nil)
	if rel := math.Abs(r.PerTask-iso) / iso; rel > 0.02 {
		t.Errorf("period %.4gms vs isolated bottleneck %.4gms (rel %.3f)",
			r.PerTask*1e3, iso*1e3, rel)
	}
}

func TestSimulateSingleChunk(t *testing.T) {
	app, _ := testApp(3, 1e6)
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.NewUniformSchedule(3, core.ClassGPU))
	r := Simulate(p, Options{Tasks: 10, Warmup: 2, Seed: 9})
	if len(r.Completions) != 10 {
		t.Fatalf("completions = %d", len(r.Completions))
	}
	if len(r.ChunkBusy) != 1 || r.ChunkBusy[0] < 0.9 {
		t.Errorf("single chunk should be ~fully busy: %v", r.ChunkBusy)
	}
}

func TestSimulateIsolatedChunkSlowerThanPredictedByIsolatedTable(t *testing.T) {
	// A two-chunk schedule on the Pixel: the big chunk runs while the
	// GPU chunk runs, so its realized service time exceeds its isolated
	// estimate (CPU throttles under load). This is the mechanism behind
	// the intro's 57% misprediction.
	app, _ := testApp(2, 2e7)
	dev := soc.NewPixel7a()
	dev.NoiseSigma = 0
	s := core.Schedule{Assign: []core.PUClass{"big", "gpu"}}
	p := mustPlan(t, app, dev, s)
	r := Simulate(p, Options{Tasks: 30, Warmup: 5, Seed: 1})
	cost := app.Stages[0].Cost
	isoBig := dev.Estimate(cost, core.ClassBig, nil)
	isoGPU := dev.Estimate(cost, core.ClassGPU, nil)
	isoPrediction := math.Max(isoBig, isoGPU)
	if r.PerTask <= isoPrediction {
		t.Errorf("measured %.4g <= isolated prediction %.4g; interference lost",
			r.PerTask, isoPrediction)
	}
}

func TestExecuteRealEngine(t *testing.T) {
	app, runs := testApp(4, 1e3)
	dev := soc.NewPixel7a()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "little"}}
	p := mustPlan(t, app, dev, s)
	r := Execute(p, Options{Tasks: 12, Warmup: 3})
	if len(r.Completions) != 12 {
		t.Fatalf("completions = %d, want 12", len(r.Completions))
	}
	// 15 total tasks × 4 stages.
	if got := runs.Load(); got != 60 {
		t.Errorf("stage executions = %d, want 60", got)
	}
	for i := 1; i < len(r.Completions); i++ {
		if r.Completions[i] < r.Completions[i-1] {
			t.Fatal("completions out of order")
		}
	}
}

func TestExecuteSingleChunk(t *testing.T) {
	app, runs := testApp(2, 1e3)
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.NewUniformSchedule(2, core.ClassBig))
	r := Execute(p, Options{Tasks: 5, Warmup: 0})
	if len(r.Completions) != 5 || runs.Load() != 10 {
		t.Fatalf("completions=%d runs=%d", len(r.Completions), runs.Load())
	}
}

func TestExecutePreservesTaskSequence(t *testing.T) {
	// Tasks must complete in stream order (SPSC FIFO end to end).
	var seqs []int
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	stages := []core.Stage{{
		Name: "only",
		CPU: func(to *core.TaskObject, par core.ParallelFor) {
			<-mu
			seqs = append(seqs, to.Seq)
			mu <- struct{}{}
		},
		GPU:  func(to *core.TaskObject, par core.ParallelFor) {},
		Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1},
	}}
	app := &core.Application{
		Name: "seq", Stages: stages,
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) },
	}
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.NewUniformSchedule(1, core.ClassBig))
	Execute(p, Options{Tasks: 8, Warmup: 0, Buffers: 3})
	if len(seqs) != 8 {
		t.Fatalf("executed %d tasks", len(seqs))
	}
	for i, s := range seqs {
		if s != i {
			t.Fatalf("sequence order broken: %v", seqs)
		}
	}
}

func TestWorkerPoolParFor(t *testing.T) {
	pool := newWorkerPool(4)
	defer pool.Close()
	var covered [100]atomic.Int32
	pool.ParFor(100, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			covered[i].Add(1)
		}
	})
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("index %d covered %d times", i, covered[i].Load())
		}
	}
	// n < width works and n <= 0 is a no-op.
	pool.ParFor(2, func(lo, hi int) {})
	pool.ParFor(0, func(lo, hi int) { t.Error("ParFor(0) ran body") })
}

func TestWorkerPoolSingleWidthRunsInline(t *testing.T) {
	pool := newWorkerPool(1)
	defer pool.Close()
	ran := false
	pool.ParFor(10, func(lo, hi int) {
		if lo != 0 || hi != 10 {
			t.Errorf("band = [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Error("body not run")
	}
}

func TestOptionsDefaults(t *testing.T) {
	app, _ := testApp(4, 1e6)
	dev := soc.NewPixel7a()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu"}})
	o := Options{}.withDefaults(p)
	if o.Tasks != 30 || o.Buffers != 3 {
		t.Errorf("defaults = %+v", o)
	}
}

func TestResultString(t *testing.T) {
	r := Result{PerTask: 0.001, Elapsed: 0.03, Completions: make([]float64, 30)}
	if s := r.String(); s == "" {
		t.Error("empty string")
	}
}

func TestSimulateTraceRecording(t *testing.T) {
	app, _ := testApp(4, 2e6)
	dev := soc.NewJetson()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu"}}
	p := mustPlan(t, app, dev, s)
	tl := &trace.Timeline{}
	r := Simulate(p, Options{Tasks: 6, Warmup: 0, Seed: 1, Trace: tl})
	// Every (task, stage) pair appears exactly once: (6 tasks + fill) ×
	// 4 stages; buffers default to chunks+1=3 in-flight so total tasks
	// processed is exactly Tasks here (warmup 0).
	if want := 6 * 4; len(tl.Spans) != want {
		t.Fatalf("spans = %d, want %d", len(tl.Spans), want)
	}
	seen := map[[2]int]bool{}
	for _, sp := range tl.Spans {
		if sp.End <= sp.Start {
			t.Fatalf("empty span %+v", sp)
		}
		key := [2]int{sp.Task, sp.StageIndex}
		if seen[key] {
			t.Fatalf("duplicate span for task %d stage %d", sp.Task, sp.StageIndex)
		}
		seen[key] = true
		wantPU := s.Assign[sp.StageIndex]
		if sp.PU != wantPU {
			t.Fatalf("span stage %d on %s, schedule says %s", sp.StageIndex, sp.PU, wantPU)
		}
	}
	// Spans of one task must be ordered by stage.
	for task := 0; task < 6; task++ {
		last := -1.0
		for stage := 0; stage < 4; stage++ {
			for _, sp := range tl.Spans {
				if sp.Task == task && sp.StageIndex == stage {
					if sp.Start < last {
						t.Fatalf("task %d stage %d starts before previous stage ends", task, stage)
					}
					last = sp.End
				}
			}
		}
	}
	// Horizon must cover the run and render a Gantt.
	if tl.Horizon() <= 0 || len(tl.Gantt(60)) == 0 {
		t.Fatal("timeline unusable")
	}
	_ = r
}

func TestSimulateEnergyAccounting(t *testing.T) {
	app, _ := testApp(4, 5e6)
	dev := soc.NewJetson()
	s := core.Schedule{Assign: []core.PUClass{"big", "big", "gpu", "gpu"}}
	p := mustPlan(t, app, dev, s)
	r := Simulate(p, Options{Tasks: 20, Warmup: 5, Seed: 2})
	if r.EnergyJ <= 0 || r.EnergyPerTaskJ <= 0 {
		t.Fatalf("no energy accounted: %+v", r)
	}
	// Average power must sit between the idle floor and the TDP.
	floor := dev.UncoreWatts
	for _, c := range dev.Classes() {
		floor += dev.Power(c, 1, false)
	}
	if r.AvgWatts <= floor || r.AvgWatts >= dev.TDPWatts()*1.5 {
		t.Errorf("avg power %v W outside (%v, %v)", r.AvgWatts, floor, dev.TDPWatts()*1.5)
	}
	// Running everything on the big cluster (9 W busy) with the GPU
	// idling must draw less average power than saturating the GPU
	// (12 W busy) with the CPU idling.
	pBig := mustPlan(t, app, dev, core.NewUniformSchedule(4, core.ClassBig))
	rBig := Simulate(pBig, Options{Tasks: 20, Warmup: 5, Seed: 2})
	pGPU := mustPlan(t, app, dev, core.NewUniformSchedule(4, core.ClassGPU))
	rGPU := Simulate(pGPU, Options{Tasks: 20, Warmup: 5, Seed: 2})
	if rBig.AvgWatts >= rGPU.AvgWatts {
		t.Errorf("big-only avg %v W !< GPU-only %v W", rBig.AvgWatts, rGPU.AvgWatts)
	}
	// Energy and average power must agree on the makespan.
	if rGPU.AvgWatts <= 0 || rGPU.EnergyJ <= 0 {
		t.Error("GPU-only energy not accounted")
	}
}

func TestExecuteSurvivesKernelPanic(t *testing.T) {
	boom := func(to *core.TaskObject, par core.ParallelFor) {
		if to.Seq == 2 {
			panic("kernel exploded")
		}
	}
	ok := func(to *core.TaskObject, par core.ParallelFor) {}
	app := &core.Application{
		Name: "explosive",
		Stages: []core.Stage{
			{Name: "a", CPU: ok, GPU: ok, Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
			{Name: "b", CPU: boom, GPU: boom, Cost: core.CostSpec{FLOPs: 1, ParallelFraction: 0.5, WorkItems: 1}},
		},
		NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) },
	}
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "gpu"}})
	done := make(chan Result, 1)
	go func() { done <- Execute(p, Options{Tasks: 10, Warmup: 0}) }()
	select {
	case r := <-done:
		if r.Err == nil {
			t.Error("kernel panic not surfaced in Result.Err")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pipeline deadlocked after kernel panic")
	}
}

func TestExecuteTraceRecording(t *testing.T) {
	app, _ := testApp(3, 1e3)
	dev := soc.NewJetson()
	p := mustPlan(t, app, dev, core.Schedule{Assign: []core.PUClass{"big", "big", "gpu"}})
	tl := &trace.Timeline{}
	r := Execute(p, Options{Tasks: 5, Warmup: 0, Trace: tl})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if len(tl.Spans) != 5*3 {
		t.Fatalf("spans = %d, want 15", len(tl.Spans))
	}
	for _, sp := range tl.Spans {
		if sp.End < sp.Start {
			t.Fatalf("negative span %+v", sp)
		}
	}
	if tl.Gantt(40) == "" {
		t.Error("gantt empty")
	}
}

// TestSimulatePeriodEnvelopeFuzz checks the core physical invariant over
// random applications and schedules: with noise disabled, each chunk's
// realized rate is always between its isolated and fully-interfered
// rates, so the steady-state period must fall inside the corresponding
// bottleneck envelope.
func TestSimulatePeriodEnvelopeFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	devices := []*soc.Device{soc.NewPixel7a(), soc.NewOnePlus11(), soc.NewJetson(), soc.NewJetsonLP()}
	for trial := 0; trial < 60; trial++ {
		dev := devices[rng.Intn(len(devices))]
		dev.NoiseSigma = 0
		classes := dev.Classes()
		nStages := 2 + rng.Intn(6)
		stages := make([]core.Stage, nStages)
		kern := func(to *core.TaskObject, par core.ParallelFor) {}
		for i := range stages {
			stages[i] = core.Stage{
				Name: fmt.Sprintf("s%d", i), CPU: kern, GPU: kern,
				Cost: core.CostSpec{
					FLOPs: 1e5 + rng.Float64()*5e7, Bytes: rng.Float64() * 5e6,
					ParallelFraction: 0.9 + rng.Float64()*0.0999,
					Divergence:       rng.Float64() * 0.9, Irregularity: rng.Float64() * 0.9,
					WorkItems: 1e3 + rng.Float64()*1e5,
				},
			}
		}
		app := &core.Application{Name: "fuzz", Stages: stages,
			NewTask: func() *core.TaskObject { return core.NewTaskObject(nil, nil, nil) }}

		// Random contiguous schedule.
		var assign []core.PUClass
		perm := rng.Perm(len(classes))
		pos := 0
		for pos < nStages {
			if len(perm) == 0 {
				break
			}
			cls := classes[perm[0]]
			perm = perm[1:]
			run := 1 + rng.Intn(nStages-pos)
			if len(perm) == 0 {
				run = nStages - pos
			}
			for k := 0; k < run; k++ {
				assign = append(assign, cls)
			}
			pos += run
		}
		sch := core.Schedule{Assign: assign}
		p, err := NewPlan(app, dev, sch)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r := Simulate(p, Options{Tasks: 25, Warmup: 8, Seed: int64(trial)})

		lower, upper := 0.0, 0.0
		for _, ch := range sch.Chunks() {
			iso, heavy := 0.0, 0.0
			for si := ch.Start; si < ch.End; si++ {
				cost := stages[si].Cost
				iso += dev.Estimate(cost, ch.PU, nil)
				heavy += dev.Estimate(cost, ch.PU, dev.HeavyEnv(cost, ch.PU))
			}
			lower = math.Max(lower, math.Min(iso, heavy))
			upper = math.Max(upper, math.Max(iso, heavy))
		}
		if r.PerTask < lower*0.99 || r.PerTask > upper*1.01 {
			t.Fatalf("trial %d on %s (%s): period %.4g outside [%.4g, %.4g]",
				trial, dev.Name, sch, r.PerTask, lower, upper)
		}
	}
}
