// Stress suite for the Real engine, run under `go test -race`: concurrent
// runs of all four evaluation apps with randomized contiguous chunkings,
// cancellation mid-flight, and induced stage panics. Lives in an external
// test package so it can drive the engine through the public API with the
// real btapps kernels (the internal package cannot import them without a
// cycle).
package pipeline_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// stressApps builds fresh small-sized instances of the four evaluation
// workloads. Fresh instances matter: panic-injection tests mutate stages,
// and TaskObjects must not be shared across concurrent runs.
func stressApps(t *testing.T) []*bt.Application {
	t.Helper()
	return append(cheapApps(t), btapps.AlexNetDense()) // dense is heaviest — used sparingly
}

// cheapApps builds the three fast workloads for tests that need many
// rounds.
func cheapApps(t *testing.T) []*bt.Application {
	t.Helper()
	return []*bt.Application{cheapApp(t, 0), cheapApp(t, 1), cheapApp(t, 2)}
}

// cheapApp builds one fast workload by index — a fresh instance each
// call, so callers may mutate stages or run concurrently.
func cheapApp(t *testing.T, i int) *bt.Application {
	t.Helper()
	switch i % 3 {
	case 0:
		return btapps.AlexNetSparseBatch(1)
	case 1:
		app, err := btapps.OctreeSized(2048, "uniform")
		if err != nil {
			t.Fatal(err)
		}
		return app
	default:
		app, err := btapps.VisionSized(64, 48)
		if err != nil {
			t.Fatal(err)
		}
		return app
	}
}

// randomChunking generates a random contiguous stage→PU assignment.
func randomChunking(rng *rand.Rand, nStages int, classes []bt.PUClass) bt.Schedule {
	var assign []bt.PUClass
	perm := rng.Perm(len(classes))
	pos := 0
	for pos < nStages {
		cls := classes[perm[0]]
		perm = perm[1:]
		run := 1 + rng.Intn(nStages-pos)
		if len(perm) == 0 {
			run = nStages - pos
		}
		for k := 0; k < run; k++ {
			assign = append(assign, cls)
		}
		pos += run
	}
	return bt.Schedule{Assign: assign}
}

// settleGoroutines waits for the goroutine count to return to the
// pre-run level, failing the test if it does not.
func settleGoroutines(t *testing.T, before int, what string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("%s leaked goroutines: %d before, %d after",
				what, before, runtime.NumGoroutine())
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStressConcurrentRandomChunkings runs all four apps concurrently,
// each under several randomized chunkings, and checks every run
// completes the full task count with no error. Under -race this
// exercises dispatcher/queue/pool interleavings across simultaneous
// pipelines sharing the host.
func TestStressConcurrentRandomChunkings(t *testing.T) {
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		t.Fatal(err)
	}
	classes := dev.Classes()
	before := runtime.NumGoroutine()

	type job struct {
		app  *bt.Application
		sch  bt.Schedule
		seed int64
	}
	var jobs []job
	rng := rand.New(rand.NewSource(7))
	for ai, app := range stressApps(t) {
		runs := 3
		if app.Name == "alexnet-dense" {
			runs = 1 // ~200ms/task; one schedule keeps -race time sane
		}
		for k := 0; k < runs; k++ {
			jobs = append(jobs, job{app, randomChunking(rng, len(app.Stages), classes), int64(ai*10 + k)})
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, len(jobs))
	for _, j := range jobs {
		j := j
		wg.Add(1)
		go func() {
			defer wg.Done()
			plan, err := bt.NewPlan(j.app, dev, j.sch)
			if err != nil {
				errs <- err
				return
			}
			m := bt.NewMetrics(plan)
			tasks := 4
			r := bt.Execute(plan, bt.RunOptions{Tasks: tasks, Warmup: 1, Metrics: m})
			if r.Err != nil {
				errs <- r.Err
				return
			}
			if len(r.Completions) != tasks {
				errs <- fmt.Errorf("%s %s: %d completions, want %d",
					j.app.Name, j.sch, len(r.Completions), tasks)
				return
			}
			// Metrics sanity under concurrency: every stage dispatched
			// warmup+tasks times.
			for i := 0; i < m.NumStages(); i++ {
				if got := m.Stage(i).Dispatches(); got != uint64(tasks+1) {
					errs <- fmt.Errorf("%s stage %d: %d dispatches, want %d",
						j.app.Name, i, got, tasks+1)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	settleGoroutines(t, before, "concurrent stress runs")
}

// TestStressCancellationMidFlight cancels real runs at randomized points
// and checks each run either finished cleanly (cancel landed too late)
// or reports context.Canceled — never hangs, never leaks.
func TestStressCancellationMidFlight(t *testing.T) {
	dev, err := bt.DeviceByName("jetson")
	if err != nil {
		t.Fatal(err)
	}
	classes := dev.Classes()
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(11))

	apps := cheapApps(t) // cancellation timing needs many rounds
	for round := 0; round < 6; round++ {
		app := apps[round%len(apps)]
		sch := randomChunking(rng, len(app.Stages), classes)
		plan, err := bt.NewPlan(app, dev, sch)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		delay := time.Duration(rng.Intn(8)) * time.Millisecond
		go func() {
			time.Sleep(delay)
			cancel()
		}()
		done := make(chan bt.RunResult, 1)
		go func() { done <- bt.ExecuteContext(ctx, plan, bt.RunOptions{Tasks: 200, Warmup: 0}) }()
		select {
		case r := <-done:
			if r.Err != nil && !errors.Is(r.Err, context.Canceled) {
				t.Fatalf("round %d (%s): unexpected error %v", round, app.Name, r.Err)
			}
			if r.Err == nil && len(r.Completions) != 200 {
				t.Fatalf("round %d: clean finish with %d completions", round, len(r.Completions))
			}
		case <-time.After(60 * time.Second):
			t.Fatalf("round %d (%s): canceled run hung", round, app.Name)
		}
		cancel()
	}
	settleGoroutines(t, before, "cancellation rounds")
}

// TestStressInjectedPanics wraps a random stage of each app with a kernel
// that panics at a random task, on a random lane, and checks the engine
// surfaces an attributed *bt.PanicError instead of deadlocking or
// crashing — concurrently across apps.
func TestStressInjectedPanics(t *testing.T) {
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		t.Fatal(err)
	}
	classes := dev.Classes()
	before := runtime.NumGoroutine()
	rng := rand.New(rand.NewSource(23))

	type result struct {
		app   string
		stage string
		err   error
	}
	var wg sync.WaitGroup
	results := make(chan result, 16)
	for round := 0; round < 8; round++ {
		app := cheapApp(t, round) // fresh instance: stages are mutated below
		si := rng.Intn(len(app.Stages))
		atSeq := rng.Intn(4)
		inBand := rng.Intn(2) == 0
		name := app.Stages[si].Name
		orig := app.Stages[si].CPU
		origGPU := app.Stages[si].GPU
		boom := func(orig bt.KernelFunc) bt.KernelFunc {
			return func(task *bt.TaskObject, par bt.ParallelFor) {
				if task.Seq == atSeq {
					if inBand {
						par(32, func(lo, hi int) {
							if lo == 0 {
								panic("injected band panic")
							}
						})
					}
					panic("injected dispatcher panic")
				}
				orig(task, par)
			}
		}
		app.Stages[si].CPU = boom(orig)
		app.Stages[si].GPU = boom(origGPU)
		sch := randomChunking(rng, len(app.Stages), classes)
		plan, err := bt.NewPlan(app, dev, sch)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := bt.Execute(plan, bt.RunOptions{Tasks: 8, Warmup: 0})
			results <- result{app.Name, name, r.Err}
		}()
	}
	wg.Wait()
	close(results)
	for res := range results {
		var perr *bt.PanicError
		if !errors.As(res.err, &perr) {
			t.Errorf("%s: err = %v, want *bt.PanicError", res.app, res.err)
			continue
		}
		if perr.Stage != res.stage {
			t.Errorf("%s: panic attributed to stage %q, injected into %q",
				res.app, perr.Stage, res.stage)
		}
	}
	settleGoroutines(t, before, "panic-injection rounds")
}
