package pipeline

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/obs"
	"bettertogether/internal/queue"
	"bettertogether/internal/trace"
)

// defaultShutdownTimeout bounds how long the Real engine waits for
// dispatcher goroutines to join after the run completes or is canceled.
const defaultShutdownTimeout = 30 * time.Second

// Execute runs the plan's actual kernels concurrently: one long-lived
// dispatcher goroutine per chunk, SPSC queues between chunks, TaskObjects
// recycled through the closing edge of the ring (paper Sec. 3.4). Wall
// times are host times — useful for functional validation and relative
// comparison, not for reproducing device numbers (that is the Sim
// engine's job). Execute is ExecuteContext with a background context.
//
// Deprecated: use RealEngine{}.Run, which routes through the shared
// engine driver. Execute delegates there and its output is unchanged.
func Execute(p *Plan, opts Options) Result {
	return ExecuteContext(context.Background(), p, opts)
}

// ExecuteContext is Execute with a lifecycle contract:
//
//   - Cancellation: when ctx is canceled the ring closes, in-flight
//     tasks drain (no new tasks are issued), every dispatcher joins, and
//     Result.Err carries ctx.Err(). Completions recorded before the
//     cancel are preserved.
//   - Panic isolation: a panicking kernel — on a dispatcher or on any
//     pool worker lane — shuts the pipeline down instead of crashing the
//     process; Result.Err is a *PanicError attributing the panic to its
//     chunk, stage, and task, with the original stack.
//   - Bounded join: dispatchers are joined with a deadline
//     (Options.ShutdownTimeout). If a kernel never returns, Result.Err
//     is a *ShutdownTimeoutError and the stalled goroutines are leaked
//     loudly rather than deadlocking the caller.
//
// When Options.Metrics is set, the dispatchers additionally record
// per-stage dispatch counts and service times, per-edge waits, stalls and
// occupancy, and per-pool utilization; recording is lock-free and
// allocation-free.
//
// Deprecated: use RealEngine{}.Run, which routes through the shared
// engine driver. ExecuteContext delegates there and its output is
// unchanged.
func ExecuteContext(ctx context.Context, p *Plan, opts Options) Result {
	return RealEngine{}.Run(ctx, p, opts)
}

// realRun is the Real engine's executor: the dispatcher/queue machinery
// over an already validated plan and resolved options. The lifecycle
// contract is documented on ExecuteContext.
func realRun(ctx context.Context, p *Plan, opts Options) runOutcome {
	total := opts.Warmup + opts.Tasks
	m := opts.Metrics
	ev := opts.Events
	nChunks := len(p.Chunks)

	// One worker pool per PU class used, sized like the cluster (or the
	// resolved Options.GPUPoolWidth for the GPU class).
	order := poolOrder(p)
	pools := make(map[core.PUClass]*workerPool, len(order))
	for i, class := range order {
		pool := newWorkerPool(opts.poolWidth(p, class))
		if m != nil {
			pool.stats = m.Pool(i)
		}
		pools[class] = pool
	}

	ring := newTaskRing(nChunks, opts.Buffers)

	// Multi-buffering: pre-allocate the in-flight TaskObjects and prime
	// the first queue.
	nbuf := opts.Buffers
	if nbuf > total {
		nbuf = total
	}
	objs := make([]*core.TaskObject, nbuf)
	for i := range objs {
		objs[i] = p.App.NewTask()
		objs[i].Reset(i)
	}
	ring.Prime(objs)

	var (
		mu          sync.Mutex
		completions []float64
		start       = time.Now()
		measureFrom time.Time
		issued      = nbuf
		runErr      error
		spans       = make([][]trace.Span, nChunks)
	)
	if opts.Warmup == 0 {
		measureFrom = start
	}
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		ring.Close()
	}

	// Cancellation watcher: closing the ring releases every dispatcher
	// blocked on a queue; dispatchers mid-kernel finish the current task
	// and then observe the closed ring.
	stopWatch := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			select {
			case <-ctx.Done():
				fail(ctx.Err())
			case <-stopWatch:
			}
		}()
	}

	var wg sync.WaitGroup
	var exited atomic.Int64
	for ci := range p.Chunks {
		ci := ci
		chunk := p.Chunks[ci]
		backend := p.Backend(ci)
		pool := pools[chunk.PU]
		last := ci == nChunks-1
		inEdge := ((ci-1)%nChunks + nChunks) % nChunks
		outEdge := ci
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer exited.Add(1)
			curStage := -1
			curTask := -1
			// A panicking kernel must not deadlock the ring: shut the
			// pipeline down and surface a typed, attributed error in
			// Result.Err. Pool workers re-raise their panics here as
			// workerPanic, carrying the original value and stack.
			defer func() {
				if r := recover(); r != nil {
					perr := &PanicError{Chunk: ci, PU: chunk.PU, Task: curTask}
					if curStage >= 0 {
						perr.Stage = p.App.Stages[curStage].Name
					}
					if wp, ok := r.(workerPanic); ok {
						perr.Value, perr.Stack = wp.value, wp.stack
					} else {
						perr.Value, perr.Stack = r, debug.Stack()
					}
					fail(perr)
					if ev != nil {
						e := obs.NewEvent(obs.KindPanicRecovered)
						e.Chunk, e.Task, e.Stage = ci, curTask, perr.Stage
						e.Detail = fmt.Sprint(perr.Value)
						ev.Emit(e)
					}
				}
			}()
			in, out := ring.In(ci), ring.Out(ci)
			for {
				// Step 1: pop the next TaskObject, timing starvation.
				var popStart time.Time
				if m != nil {
					popStart = time.Now()
				}
				task, ok := in.Pop()
				if !ok {
					return
				}
				if m != nil {
					m.QueueWait(inEdge, time.Since(popStart))
					m.QueueDepth(inEdge, in.Len())
				}
				curTask = task.Seq
				// Step 2: make the chunk's buffers coherent for this PU.
				task.AcquireAll(backend)
				// Step 3: dispatch the chunk's kernels in order; ParFor's
				// barrier is step 4's yield-until-complete.
				for s := chunk.Start; s < chunk.End; s++ {
					curStage = s
					t0 := time.Now()
					p.App.Stages[s].Kernel(backend)(task, pool.ParFor)
					service := time.Since(t0)
					if m != nil {
						m.StageDone(s, service)
					}
					if ev != nil {
						e := obs.NewEvent(obs.KindStageDone)
						e.Chunk, e.Task = ci, task.Seq
						e.Stage = p.App.Stages[s].Name
						e.PU = string(chunk.PU)
						e.Dur = service
						ev.Emit(e)
					}
					if opts.Trace != nil {
						spans[ci] = append(spans[ci], trace.Span{
							Chunk: ci, PU: chunk.PU,
							Stage: p.App.Stages[s].Name, StageIndex: s,
							Task:  task.Seq,
							Start: t0.Sub(start).Seconds(),
							End:   time.Since(start).Seconds(),
						})
					}
				}
				curStage = -1
				task.ReleaseAll(backend)
				if last {
					seq := task.Seq
					now := time.Now()
					mu.Lock()
					if seq == opts.Warmup-1 {
						measureFrom = now
					}
					if seq >= opts.Warmup {
						completions = append(completions, now.Sub(start).Seconds())
					}
					done := seq == total-1
					var next int
					reissue := issued < total
					if reissue {
						next = issued
						issued++
					}
					mu.Unlock()
					if done {
						ring.Close()
						return
					}
					if reissue {
						// Step 5 + recycling: reset for the next stream
						// input and push back to the first queue.
						task.Reset(next)
						pushTimed(out, task, m, ev, outEdge)
					}
				} else {
					// Step 5: hand the task to the next chunk.
					pushTimed(out, task, m, ev, outEdge)
				}
			}
		}()
	}

	// Join every dispatcher with a bounded deadline so a stuck kernel
	// cannot hang the caller forever.
	joined := make(chan struct{})
	go func() {
		wg.Wait()
		close(joined)
	}()
	deadline := opts.ShutdownTimeout
	if deadline <= 0 {
		deadline = defaultShutdownTimeout
	}
	clean := true
	select {
	case <-joined:
	case <-time.After(deadline):
		clean = false
		ring.Close() // release anything still blocked on a queue
		// Give released dispatchers one more grace window to exit.
		select {
		case <-joined:
			clean = true
		case <-time.After(100 * time.Millisecond):
		}
	}
	close(stopWatch)

	mu.Lock()
	if !clean && runErr == nil {
		runErr = &ShutdownTimeoutError{
			Timeout: deadline,
			Stalled: nChunks - int(exited.Load()),
		}
	}
	err := runErr
	comps := append([]float64(nil), completions...)
	from := measureFrom
	mu.Unlock()

	if clean {
		// Dispatchers are gone; pool workers are idle. Stop them. With a
		// stalled dispatcher we must skip this: Close would block behind
		// its in-flight work.
		for _, pool := range pools {
			pool.Close()
		}
		if opts.Trace != nil {
			for _, ss := range spans {
				for _, sp := range ss {
					opts.Trace.Add(sp)
				}
			}
		}
	}
	if m != nil {
		m.SetElapsed(time.Since(start))
	}

	startSec := 0.0
	if !from.IsZero() {
		startSec = from.Sub(start).Seconds()
	}
	return runOutcome{completions: comps, measureStart: startSec, err: err}
}

// pushTimed pushes a task onto an edge, recording producer-side
// backpressure when metrics are attached and emitting a QueueStall event
// when the push actually blocked. The fast path (room available) records
// a zero stall without reading the clock twice and emits nothing.
func pushTimed(out *queue.SPSC[*core.TaskObject], task *core.TaskObject, m *metrics.Pipeline, ev obs.Sink, edge int) {
	if m == nil && ev == nil {
		out.Push(task)
		return
	}
	if out.TryPush(task) {
		if m != nil {
			m.QueueStall(edge, 0)
			m.QueueDepth(edge, out.Len())
		}
		return
	}
	t0 := time.Now()
	out.Push(task)
	stall := time.Since(t0)
	if m != nil {
		m.QueueStall(edge, stall)
		m.QueueDepth(edge, out.Len())
	}
	if ev != nil {
		e := obs.NewEvent(obs.KindQueueStall)
		e.Chunk, e.Task = edge, task.Seq
		e.Dur = stall
		ev.Emit(e)
	}
}
