package pipeline

import (
	"fmt"
	"sync"
	"time"

	"bettertogether/internal/core"
	"bettertogether/internal/trace"
)

// gpuPoolWidth is the worker width of the simulated-SIMT GPU executor in
// the real engine. Real kernels are CPU-bound Go code here, so the width
// models "many lanes" without oversubscribing the host.
const gpuPoolWidth = 8

// Execute runs the plan's actual kernels concurrently: one long-lived
// dispatcher goroutine per chunk, SPSC queues between chunks, TaskObjects
// recycled through the closing edge of the ring (paper Sec. 3.4). Wall
// times are host times — useful for functional validation and relative
// comparison, not for reproducing device numbers (that is Simulate's
// job).
func Execute(p *Plan, opts Options) Result {
	opts = opts.withDefaults(p)
	total := opts.Warmup + opts.Tasks

	// One worker pool per PU class used, sized like the cluster.
	pools := make(map[core.PUClass]*workerPool, len(p.Chunks))
	for _, c := range p.Chunks {
		if _, ok := pools[c.PU]; ok {
			continue
		}
		pu := p.Device.PU(c.PU)
		width := pu.Cores
		if pu.Kind == core.KindGPU {
			width = gpuPoolWidth
		}
		pools[c.PU] = newWorkerPool(width)
	}
	defer func() {
		for _, pool := range pools {
			pool.Close()
		}
	}()

	ring := newTaskRing(len(p.Chunks), opts.Buffers)

	// Multi-buffering: pre-allocate the in-flight TaskObjects and prime
	// the first queue.
	nbuf := opts.Buffers
	if nbuf > total {
		nbuf = total
	}
	objs := make([]*core.TaskObject, nbuf)
	for i := range objs {
		objs[i] = p.App.NewTask()
		objs[i].Reset(i)
	}
	ring.Prime(objs)

	var (
		mu          sync.Mutex
		completions []float64
		start       = time.Now()
		measureFrom time.Time
		issued      = nbuf
		runErr      error
		spans       = make([][]trace.Span, len(p.Chunks))
	)
	if opts.Warmup == 0 {
		measureFrom = start
	}
	fail := func(err error) {
		mu.Lock()
		if runErr == nil {
			runErr = err
		}
		mu.Unlock()
		ring.Close()
	}

	var wg sync.WaitGroup
	for ci := range p.Chunks {
		ci := ci
		chunk := p.Chunks[ci]
		backend := p.Backend(ci)
		pool := pools[chunk.PU]
		last := ci == len(p.Chunks)-1
		wg.Add(1)
		go func() {
			defer wg.Done()
			// A panicking kernel must not deadlock the ring: shut the
			// pipeline down and surface the failure in Result.Err.
			defer func() {
				if r := recover(); r != nil {
					fail(fmt.Errorf("pipeline: chunk %d (%s) kernel panicked: %v",
						ci, chunk.PU, r))
				}
			}()
			in, out := ring.In(ci), ring.Out(ci)
			for {
				// Step 1: pop the next TaskObject.
				task, ok := in.Pop()
				if !ok {
					return
				}
				// Step 2: make the chunk's buffers coherent for this PU.
				task.AcquireAll(backend)
				// Step 3: dispatch the chunk's kernels in order; ParFor's
				// barrier is step 4's yield-until-complete.
				for s := chunk.Start; s < chunk.End; s++ {
					t0 := time.Now()
					p.App.Stages[s].Kernel(backend)(task, pool.ParFor)
					if opts.Trace != nil {
						spans[ci] = append(spans[ci], trace.Span{
							Chunk: ci, PU: chunk.PU,
							Stage: p.App.Stages[s].Name, StageIndex: s,
							Task:  task.Seq,
							Start: t0.Sub(start).Seconds(),
							End:   time.Since(start).Seconds(),
						})
					}
				}
				task.ReleaseAll(backend)
				if last {
					seq := task.Seq
					now := time.Now()
					mu.Lock()
					if seq == opts.Warmup-1 {
						measureFrom = now
					}
					if seq >= opts.Warmup {
						completions = append(completions, now.Sub(start).Seconds())
					}
					done := seq == total-1
					var next int
					reissue := issued < total
					if reissue {
						next = issued
						issued++
					}
					mu.Unlock()
					if done {
						ring.Close()
						return
					}
					if reissue {
						// Step 5 + recycling: reset for the next stream
						// input and push back to the first queue.
						task.Reset(next)
						out.Push(task)
					}
				} else {
					// Step 5: hand the task to the next chunk.
					out.Push(task)
				}
			}
		}()
	}
	wg.Wait()

	startSec := 0.0
	if !measureFrom.IsZero() {
		startSec = measureFrom.Sub(start).Seconds()
	}
	if opts.Trace != nil {
		for _, ss := range spans {
			for _, sp := range ss {
				opts.Trace.Add(sp)
			}
		}
	}
	r := finalize(completions, startSec, nil)
	r.Err = runErr
	return r
}
