package trace

import "fmt"

// SessionTrace is one session's contribution to a merged timeline.
type SessionTrace struct {
	// Name qualifies the session's rows and stages in the merged output.
	Name string
	// Timeline holds the session's spans on its session-local clock.
	Timeline *Timeline
	// Offset shifts every span by this many seconds onto the merged
	// clock (e.g. the session's admission time).
	Offset float64
}

// MergeSessions combines per-session timelines into one renderable
// Timeline: chunk rows are re-based so each session occupies its own
// contiguous row group (in argument order), row labels become
// "name/chunk i (pu)", stage indexes are re-based per session so glyphs
// and the legend stay unambiguous, and stage names are prefixed with the
// session name. Spans within each row group keep their original order,
// so the merge is deterministic for deterministic inputs.
func MergeSessions(parts ...SessionTrace) *Timeline {
	out := &Timeline{}
	rowBase, stageBase := 0, 0
	for pi, part := range parts {
		if part.Timeline == nil {
			continue
		}
		name := part.Name
		if name == "" {
			name = fmt.Sprintf("session %d", pi)
		}
		rows, stages := 0, 0
		for _, s := range part.Timeline.Spans {
			if s.Chunk+1 > rows {
				rows = s.Chunk + 1
			}
			if s.StageIndex+1 > stages {
				stages = s.StageIndex + 1
			}
		}
		labels := make([]string, rows)
		for _, s := range part.Timeline.Spans {
			ns := s
			ns.Chunk += rowBase
			ns.StageIndex += stageBase
			ns.Start += part.Offset
			ns.End += part.Offset
			ns.Stage = name + ":" + s.Stage
			if labels[s.Chunk] == "" {
				labels[s.Chunk] = fmt.Sprintf("%s/chunk %d (%s)", name, s.Chunk, s.PU)
			}
			out.Spans = append(out.Spans, ns)
		}
		out.Labels = append(out.Labels, labels...)
		rowBase += rows
		stageBase += stages
	}
	return out
}
