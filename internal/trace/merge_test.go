package trace

import (
	"strings"
	"testing"
)

// mergedSample merges two small session timelines: session A with two
// chunks on [0,2], session B with one chunk shifted by Offset 2.
func mergedSample() *Timeline {
	a := &Timeline{}
	a.Add(Span{Chunk: 0, PU: "big", Stage: "m", StageIndex: 0, Task: 0, Start: 0, End: 1})
	a.Add(Span{Chunk: 1, PU: "gpu", Stage: "s", StageIndex: 1, Task: 0, Start: 1, End: 2})
	b := &Timeline{}
	b.Add(Span{Chunk: 0, PU: "gpu", Stage: "conv", StageIndex: 0, Task: 0, Start: 0, End: 2})
	return MergeSessions(
		SessionTrace{Name: "octree#0", Timeline: a},
		SessionTrace{Name: "alex#1", Timeline: b, Offset: 2},
	)
}

func TestMergeSessionsRebases(t *testing.T) {
	m := mergedSample()
	if len(m.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(m.Spans))
	}
	// Session B's chunk 0 lands on row 2, its stage index re-bases past
	// A's two stages, and its clock shifts by the offset.
	bSpan := m.Spans[2]
	if bSpan.Chunk != 2 || bSpan.StageIndex != 2 {
		t.Errorf("B span not re-based: chunk %d stage %d", bSpan.Chunk, bSpan.StageIndex)
	}
	if bSpan.Start != 2 || bSpan.End != 4 {
		t.Errorf("B span not offset: [%v, %v]", bSpan.Start, bSpan.End)
	}
	if bSpan.Stage != "alex#1:conv" {
		t.Errorf("B stage not session-qualified: %q", bSpan.Stage)
	}
	wantLabels := []string{
		"octree#0/chunk 0 (big)",
		"octree#0/chunk 1 (gpu)",
		"alex#1/chunk 0 (gpu)",
	}
	if len(m.Labels) != len(wantLabels) {
		t.Fatalf("labels = %v", m.Labels)
	}
	for i, w := range wantLabels {
		if m.Labels[i] != w {
			t.Errorf("label %d = %q, want %q", i, m.Labels[i], w)
		}
	}
	if m.Horizon() != 4 {
		t.Errorf("merged horizon = %v, want 4", m.Horizon())
	}
}

// TestMergeSessionsGanttGolden pins the full merged rendering: row
// labels, glyph re-basing, session-qualified legend, utilization, and
// horizon. Any formatting change must update this deliberately.
func TestMergeSessionsGanttGolden(t *testing.T) {
	got := mergedSample().Gantt(8)
	want := strings.Join([]string{
		"octree#0/chunk 0 (big) |00......|",
		"octree#0/chunk 1 (gpu) |..11....|",
		"alex#1/chunk 0 (gpu)   |....2222|",
		"legend: 0=octree#0:m 1=octree#0:s 2=alex#1:conv",
		"octree#0/chunk 0 (big)  busy 25%",
		"octree#0/chunk 1 (gpu)  busy 25%",
		"alex#1/chunk 0 (gpu)    busy 50%",
		"horizon 4000.000 ms over 3 spans",
		"",
	}, "\n")
	if got != want {
		t.Errorf("merged Gantt drifted from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestMergeSessionsSkipsNilAndNamesAnonymous(t *testing.T) {
	b := &Timeline{}
	b.Add(Span{Chunk: 0, PU: "big", Stage: "x", StageIndex: 0, Start: 0, End: 1})
	m := MergeSessions(
		SessionTrace{Name: "dead", Timeline: nil},
		SessionTrace{Timeline: b},
	)
	if len(m.Spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(m.Spans))
	}
	if m.Spans[0].Stage != "session 1:x" {
		t.Errorf("anonymous session not defaulted: %q", m.Spans[0].Stage)
	}
	if m.Spans[0].Chunk != 0 {
		t.Errorf("nil part consumed rows: chunk %d", m.Spans[0].Chunk)
	}
}
