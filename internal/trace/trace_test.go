package trace

import (
	"math"
	"strings"
	"testing"
)

func sampleTimeline() *Timeline {
	t := &Timeline{}
	// Two chunks: chunk 0 runs stages 0,1 back to back per task; chunk 1
	// runs stage 2.
	t.Add(Span{Chunk: 0, PU: "big", Stage: "s0", StageIndex: 0, Task: 0, Start: 0, End: 1})
	t.Add(Span{Chunk: 0, PU: "big", Stage: "s1", StageIndex: 1, Task: 0, Start: 1, End: 2})
	t.Add(Span{Chunk: 1, PU: "gpu", Stage: "s2", StageIndex: 2, Task: 0, Start: 2, End: 4})
	t.Add(Span{Chunk: 0, PU: "big", Stage: "s0", StageIndex: 0, Task: 1, Start: 2, End: 3})
	t.Add(Span{Chunk: 0, PU: "big", Stage: "s1", StageIndex: 1, Task: 1, Start: 3, End: 4})
	return t
}

func TestHorizonAndChunks(t *testing.T) {
	tl := sampleTimeline()
	if tl.Horizon() != 4 {
		t.Errorf("Horizon = %v", tl.Horizon())
	}
	if tl.Chunks() != 2 {
		t.Errorf("Chunks = %v", tl.Chunks())
	}
	if (&Timeline{}).Horizon() != 0 {
		t.Error("empty horizon should be 0")
	}
}

func TestBusyFractions(t *testing.T) {
	tl := sampleTimeline()
	busy := tl.BusyFractions()
	// Chunk 0 busy 4 of 4 seconds; chunk 1 busy 2 of 4.
	if math.Abs(busy[0]-1.0) > 1e-12 || math.Abs(busy[1]-0.5) > 1e-12 {
		t.Errorf("busy = %v", busy)
	}
}

func TestSpanDuration(t *testing.T) {
	s := Span{Start: 1.5, End: 4}
	if s.Duration() != 2.5 {
		t.Errorf("Duration = %v", s.Duration())
	}
}

func TestGanttStructure(t *testing.T) {
	tl := sampleTimeline()
	out := tl.Gantt(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// 2 chunk rows + legend + 2 utilization rows + horizon line.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "chunk 0 (big)") || !strings.Contains(lines[1], "chunk 1 (gpu)") {
		t.Errorf("row labels wrong:\n%s", out)
	}
	// Chunk 0's row has no idle dots (busy 100%); chunk 1's row has
	// idle at the start.
	row0 := lines[0][strings.Index(lines[0], "|")+1:]
	if strings.Contains(strings.TrimSuffix(row0, "|"), ".") {
		t.Errorf("chunk 0 shows idle cells: %q", row0)
	}
	row1 := lines[1][strings.Index(lines[1], "|")+1:]
	if !strings.HasPrefix(row1, ".") {
		t.Errorf("chunk 1 should start idle: %q", row1)
	}
	if !strings.Contains(out, "legend: 0=s0 1=s1 2=s2") {
		t.Errorf("legend wrong:\n%s", out)
	}
	if !strings.Contains(out, "busy 100%") || !strings.Contains(out, "busy 50%") {
		t.Errorf("utilization summary wrong:\n%s", out)
	}
}

func TestGanttEmpty(t *testing.T) {
	if got := (&Timeline{}).Gantt(20); !strings.Contains(got, "empty") {
		t.Errorf("empty gantt = %q", got)
	}
}

func TestGanttDefaultsWidth(t *testing.T) {
	tl := sampleTimeline()
	out := tl.Gantt(0)
	first := strings.Split(out, "\n")[0]
	// 80 cells between the pipes.
	inner := first[strings.Index(first, "|")+1 : strings.LastIndex(first, "|")]
	if len(inner) != 80 {
		t.Errorf("default width = %d", len(inner))
	}
}

func TestStageGlyphStable(t *testing.T) {
	if stageGlyph(0) != '0' || stageGlyph(10) != 'a' || stageGlyph(36) != '0' {
		t.Error("glyph mapping changed")
	}
}

func TestGanttDominantStagePerCell(t *testing.T) {
	// A cell split between two stages shows the one that occupied more
	// of it.
	tl := &Timeline{}
	tl.Add(Span{Chunk: 0, PU: "big", Stage: "a", StageIndex: 0, Start: 0, End: 0.2})
	tl.Add(Span{Chunk: 0, PU: "big", Stage: "b", StageIndex: 1, Start: 0.2, End: 1})
	out := tl.Gantt(1)
	row := strings.Split(out, "\n")[0]
	if !strings.Contains(row, "|1|") {
		t.Errorf("dominant stage not shown: %q", row)
	}
}

// TestGanttZeroHorizonGolden pins the exact guard output: a timeline
// with no spans, and one whose spans all have zero extent, must both
// render the stable empty-timeline string (exporters and the
// introspection server rely on Gantt never dividing by a zero horizon).
func TestGanttZeroHorizonGolden(t *testing.T) {
	const golden = "(empty timeline)\n"
	zeroSpan := &Timeline{}
	zeroSpan.Add(Span{Chunk: 0, PU: "big", Stage: "s0", Start: 0, End: 0})
	zeroSpan.Add(Span{Chunk: 1, PU: "gpu", Stage: "s1", Start: 0, End: 0})
	cases := []struct {
		name string
		tl   *Timeline
	}{
		{"no spans", &Timeline{}},
		{"all zero-extent spans", zeroSpan},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, width := range []int{0, 1, 40, 200} {
				if got := tc.tl.Gantt(width); got != golden {
					t.Fatalf("Gantt(%d) = %q, want %q", width, got, golden)
				}
			}
		})
	}
}
