// Package trace records pipeline execution timelines: one span per
// stage execution, attributed to its chunk, PU class, and task. The
// simulator fills a Timeline on request; the ASCII Gantt rendering makes
// schedule behaviour — overlap, bubbles, bottlenecks — visible in a
// terminal, which is how we debugged the DES and how the examples
// explain schedules.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"bettertogether/internal/core"
)

// Span is one stage execution on one PU.
type Span struct {
	// Chunk indexes the pipeline chunk that dispatched the stage.
	Chunk int
	// PU is the executing class.
	PU core.PUClass
	// Stage is the stage name.
	Stage string
	// StageIndex is the stage's pipeline position.
	StageIndex int
	// Task is the stream sequence number.
	Task int
	// Start and End are in seconds (virtual or wall, per the engine).
	Start, End float64
}

// Duration returns the span length.
func (s Span) Duration() float64 { return s.End - s.Start }

// Timeline accumulates spans for one execution run.
type Timeline struct {
	Spans []Span
	// Labels optionally overrides the Gantt's row labels: row r uses
	// Labels[r] when set. Engines leave it nil (rows label themselves
	// "chunk N (pu)"); MergeSessions fills it with session-qualified
	// names.
	Labels []string
}

// Add appends a span.
func (t *Timeline) Add(s Span) { t.Spans = append(t.Spans, s) }

// Horizon returns the latest span end.
func (t *Timeline) Horizon() float64 {
	h := 0.0
	for _, s := range t.Spans {
		if s.End > h {
			h = s.End
		}
	}
	return h
}

// Chunks returns the number of distinct chunk rows.
func (t *Timeline) Chunks() int {
	n := 0
	for _, s := range t.Spans {
		if s.Chunk+1 > n {
			n = s.Chunk + 1
		}
	}
	return n
}

// BusyFractions returns each chunk's busy time divided by the horizon.
func (t *Timeline) BusyFractions() []float64 {
	h := t.Horizon()
	out := make([]float64, t.Chunks())
	if h == 0 {
		return out
	}
	for _, s := range t.Spans {
		out[s.Chunk] += s.Duration() / h
	}
	return out
}

// stageGlyph maps a stage index to a stable printable rune.
func stageGlyph(idx int) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyz"
	return glyphs[idx%len(glyphs)]
}

// Gantt renders the timeline as one row per chunk over width columns.
// Cells show the stage glyph that occupied most of the cell's time
// bucket; idle buckets are '.'. A legend and per-chunk utilization
// follow.
func (t *Timeline) Gantt(width int) string {
	if width <= 0 {
		width = 80
	}
	h := t.Horizon()
	n := t.Chunks()
	if h == 0 || n == 0 {
		return "(empty timeline)\n"
	}
	// occupancy[row][col][stage] accumulates seconds.
	type cellAcc map[int]float64
	grid := make([][]cellAcc, n)
	for r := range grid {
		grid[r] = make([]cellAcc, width)
	}
	colDur := h / float64(width)
	for _, s := range t.Spans {
		c0 := int(s.Start / colDur)
		c1 := int(s.End / colDur)
		if c1 >= width {
			c1 = width - 1
		}
		for c := c0; c <= c1; c++ {
			bucketLo := float64(c) * colDur
			bucketHi := bucketLo + colDur
			lo, hi := s.Start, s.End
			if lo < bucketLo {
				lo = bucketLo
			}
			if hi > bucketHi {
				hi = bucketHi
			}
			if hi <= lo {
				continue
			}
			if grid[s.Chunk][c] == nil {
				grid[s.Chunk][c] = cellAcc{}
			}
			grid[s.Chunk][c][s.StageIndex] += hi - lo
		}
	}
	// Row labels: chunk index + PU class, unless overridden.
	labels := make([]string, n)
	for _, s := range t.Spans {
		labels[s.Chunk] = fmt.Sprintf("chunk %d (%s)", s.Chunk, s.PU)
	}
	for r := 0; r < n && r < len(t.Labels); r++ {
		if t.Labels[r] != "" {
			labels[r] = t.Labels[r]
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for r := 0; r < n; r++ {
		fmt.Fprintf(&b, "%-*s |", labelW, labels[r])
		for c := 0; c < width; c++ {
			cell := grid[r][c]
			if len(cell) == 0 {
				b.WriteByte('.')
				continue
			}
			best, bestT := -1, 0.0
			for stage, dur := range cell {
				if dur > bestT || (dur == bestT && stage < best) {
					best, bestT = stage, dur
				}
			}
			b.WriteByte(stageGlyph(best))
		}
		b.WriteString("|\n")
	}
	// Legend of stage glyphs present.
	seen := map[int]string{}
	for _, s := range t.Spans {
		seen[s.StageIndex] = s.Stage
	}
	idxs := make([]int, 0, len(seen))
	for i := range seen {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	b.WriteString("legend:")
	for _, i := range idxs {
		fmt.Fprintf(&b, " %c=%s", stageGlyph(i), seen[i])
	}
	b.WriteByte('\n')
	for r, f := range t.BusyFractions() {
		fmt.Fprintf(&b, "%-*s busy %.0f%%\n", labelW+1, labels[r], f*100)
	}
	fmt.Fprintf(&b, "horizon %.3f ms over %d spans\n", h*1e3, len(t.Spans))
	return b.String()
}
