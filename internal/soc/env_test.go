package soc

import (
	"math"
	"testing"

	"bettertogether/internal/core"
)

func TestEnvDeltaBasics(t *testing.T) {
	a := Env{core.ClassBig: {MemIntensity: 0.4}, core.ClassGPU: {MemIntensity: 0.2}}
	b := Env{core.ClassBig: {MemIntensity: 0.1}, core.ClassGPU: {MemIntensity: 0.25}}
	if got := a.Delta(b); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("Delta = %v, want 0.3", got)
	}
	if got, want := a.Delta(b), b.Delta(a); got != want {
		t.Fatalf("Delta asymmetric: %v vs %v", got, want)
	}
}

func TestEnvDeltaNilSides(t *testing.T) {
	e := Env{core.ClassBig: {MemIntensity: 0.6}}
	if got := e.Delta(nil); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("Delta(nil) = %v, want 0.6", got)
	}
	if got := Env(nil).Delta(e); math.Abs(got-0.6) > 1e-12 {
		t.Fatalf("nil.Delta(e) = %v, want 0.6", got)
	}
	if got := Env(nil).Delta(nil); got != 0 {
		t.Fatalf("nil.Delta(nil) = %v, want 0", got)
	}
}

func TestEnvDeltaAsymmetricClassSets(t *testing.T) {
	// A class present on only one side counts against zero load,
	// whichever side holds it.
	a := Env{core.ClassBig: {MemIntensity: 0.2}}
	b := Env{core.ClassBig: {MemIntensity: 0.2}, core.ClassLittle: {MemIntensity: 0.5}}
	if got := a.Delta(b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Delta missing other-only class: %v, want 0.5", got)
	}
	if got := b.Delta(a); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Delta missing receiver-only class: %v, want 0.5", got)
	}
}

// TestEnvDeltaNaNNotSuppressed is the bugfix pin: a NaN MemIntensity used
// to compare false against every accumulated maximum (NaN > d is false),
// so a poisoned environment reported delta 0 and the runtime's
// ReplanDelta skip disabled re-planning forever. NaN must clamp to zero
// load instead, leaving the healthy classes' drift visible.
func TestEnvDeltaNaNNotSuppressed(t *testing.T) {
	nan := math.NaN()
	poisoned := Env{
		core.ClassBig: {MemIntensity: nan},
		core.ClassGPU: {MemIntensity: 0.1},
	}
	moved := Env{
		core.ClassBig: {MemIntensity: 0.8},
		core.ClassGPU: {MemIntensity: 0.7},
	}
	got := poisoned.Delta(moved)
	if math.IsNaN(got) {
		t.Fatal("Delta propagated NaN")
	}
	// big: clamp(NaN)=0 vs 0.8 → 0.8; gpu: 0.1 vs 0.7 → 0.6.
	if math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("Delta = %v, want 0.8 (NaN clamped to zero load)", got)
	}
	// The symmetric direction must agree.
	if other := moved.Delta(poisoned); math.Abs(other-0.8) > 1e-12 {
		t.Fatalf("reverse Delta = %v, want 0.8", other)
	}
	// A NaN-only divergence is invisible (both clamp to 0) — delta must
	// be 0, not NaN.
	if got := (Env{core.ClassBig: {MemIntensity: nan}}).Delta(Env{core.ClassBig: {MemIntensity: nan}}); got != 0 {
		t.Fatalf("NaN-vs-NaN Delta = %v, want 0", got)
	}
}

func TestEnvDeltaClampsNegativeAndInf(t *testing.T) {
	a := Env{core.ClassBig: {MemIntensity: -3}}
	b := Env{core.ClassBig: {MemIntensity: math.Inf(1)}}
	// clamp(-3)=0 vs clamp(+Inf)=1.
	if got := a.Delta(b); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Delta = %v, want 1", got)
	}
}

func TestEnvAddRefusesNaN(t *testing.T) {
	e := Env{core.ClassBig: {MemIntensity: 0.3}}
	e.Add(core.ClassBig, Load{MemIntensity: math.NaN()})
	if got := e[core.ClassBig].MemIntensity; got != 0.3 {
		t.Fatalf("Add(NaN) changed intensity to %v, want 0.3", got)
	}
	// A pre-poisoned entry is repaired on the next Add rather than
	// propagated.
	e[core.ClassGPU] = Load{MemIntensity: math.NaN()}
	e.Add(core.ClassGPU, Load{MemIntensity: 0.2})
	if got := e[core.ClassGPU].MemIntensity; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Add onto NaN entry = %v, want 0.2", got)
	}
	// Negative loads clamp to zero contribution; saturation still holds.
	e.Add(core.ClassGPU, Load{MemIntensity: -5})
	if got := e[core.ClassGPU].MemIntensity; math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("Add(-5) moved intensity to %v, want 0.2", got)
	}
	e.Add(core.ClassGPU, Load{MemIntensity: 0.95})
	if got := e[core.ClassGPU].MemIntensity; got != 1 {
		t.Fatalf("Add failed to saturate: %v, want 1", got)
	}
}

func TestEnvOverlayRefusesNaN(t *testing.T) {
	base := Env{core.ClassBig: {MemIntensity: 0.4}}
	out := base.Overlay(Env{
		core.ClassBig: {MemIntensity: math.NaN()},
		core.ClassGPU: {MemIntensity: math.NaN()},
	})
	for c, l := range out {
		if math.IsNaN(l.MemIntensity) {
			t.Fatalf("Overlay propagated NaN on class %s", c)
		}
	}
	if got := out[core.ClassBig].MemIntensity; math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("Overlay(NaN) moved big to %v, want 0.4", got)
	}
	// Receiver is never mutated, either side may be nil.
	if got := base[core.ClassBig].MemIntensity; got != 0.4 {
		t.Fatalf("Overlay mutated receiver: %v", got)
	}
	if out := Env(nil).Overlay(base); math.Abs(out[core.ClassBig].MemIntensity-0.4) > 1e-12 {
		t.Fatalf("nil.Overlay lost load: %v", out)
	}
	if out := base.Overlay(nil); math.Abs(out[core.ClassBig].MemIntensity-0.4) > 1e-12 {
		t.Fatalf("Overlay(nil) lost load: %v", out)
	}
}

func TestEnvSignature(t *testing.T) {
	a := Env{core.ClassGPU: {MemIntensity: 0.41}, core.ClassBig: {MemIntensity: 0.2}}
	got := a.Signature(0.05)
	if got != "big=4,gpu=8" {
		t.Fatalf("Signature = %q, want sorted-class bucket indices big=4,gpu=8", got)
	}
	// Near-identical environments pool into the same bucket signature.
	b := Env{core.ClassGPU: {MemIntensity: 0.39}, core.ClassBig: {MemIntensity: 0.21}}
	if b.Signature(0.05) != got {
		t.Fatalf("bucket-adjacent env got distinct signature %q vs %q", b.Signature(0.05), got)
	}
	// But a bucket-crossing change separates.
	c := Env{core.ClassGPU: {MemIntensity: 0.48}, core.ClassBig: {MemIntensity: 0.2}}
	if c.Signature(0.05) == got {
		t.Fatal("bucket-crossing env shares a signature")
	}
	// nil, empty, all-zero and all-NaN all render the empty signature.
	for name, e := range map[string]Env{
		"nil":   nil,
		"empty": {},
		"zero":  {core.ClassGPU: {MemIntensity: 0}},
		"nan":   {core.ClassGPU: {MemIntensity: math.NaN()}},
	} {
		if s := e.Signature(0.05); s != "" {
			t.Errorf("%s env signature = %q, want empty", name, s)
		}
	}
	// Degenerate buckets fall back to the default width rather than
	// dividing by zero or producing NaN indices.
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if s := a.Signature(bad); s != a.Signature(0.05) {
			t.Errorf("bucket %v signature %q differs from default-width %q", bad, s, a.Signature(0.05))
		}
	}
	// Intensities past full bandwidth saturate at 1.
	hot := Env{core.ClassGPU: {MemIntensity: 7}}
	if s := hot.Signature(0.05); s != "gpu=20" {
		t.Errorf("saturating signature = %q, want gpu=20", s)
	}
}
