package soc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bettertogether/internal/core"
)

// denseCost approximates a dense conv layer: compute-bound, regular,
// massively parallel.
var denseCost = core.CostSpec{
	FLOPs: 50e6, Bytes: 2e6, ParallelFraction: 0.995,
	Divergence: 0.05, Irregularity: 0.05, WorkItems: 65536,
}

// sparseCost approximates a CSR kernel: irregular and divergent.
var sparseCost = core.CostSpec{
	FLOPs: 10e6, Bytes: 8e6, ParallelFraction: 0.98,
	Divergence: 0.6, Irregularity: 0.7, WorkItems: 8192,
}

// memCost is a bandwidth-bound streaming kernel.
var memCost = core.CostSpec{
	FLOPs: 1e6, Bytes: 64e6, ParallelFraction: 0.999,
	Divergence: 0.05, Irregularity: 0.1, WorkItems: 1 << 20,
}

func TestCatalogValid(t *testing.T) {
	devs := Catalog()
	if len(devs) != 4 {
		t.Fatalf("catalog has %d devices, want 4", len(devs))
	}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if d.GPUClass() == "" {
			t.Errorf("%s: no GPU class", d.Name)
		}
		if len(d.CPUClasses()) == 0 {
			t.Errorf("%s: no CPU classes", d.Name)
		}
	}
}

func TestDeviceByName(t *testing.T) {
	d, err := DeviceByName(Pixel7a)
	if err != nil || d.Name != Pixel7a {
		t.Fatalf("DeviceByName(pixel7a) = %v, %v", d, err)
	}
	if _, err := DeviceByName("iphone"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPixelClassStructure(t *testing.T) {
	d := NewPixel7a()
	classes := d.Classes()
	want := []core.PUClass{core.ClassBig, core.ClassMedium, core.ClassLittle, core.ClassGPU}
	if len(classes) != len(want) {
		t.Fatalf("classes = %v", classes)
	}
	for i := range want {
		if classes[i] != want[i] {
			t.Fatalf("classes = %v, want %v", classes, want)
		}
	}
	// Affinity map: 2 big + 2 medium + 4 little = 8 cores, all distinct.
	seen := map[int]bool{}
	total := 0
	for _, c := range d.CPUClasses() {
		for _, id := range d.PU(c).CoreIDs {
			if seen[id] {
				t.Errorf("core ID %d in two clusters", id)
			}
			seen[id] = true
			total++
		}
	}
	if total != 8 {
		t.Errorf("Pixel has %d pinnable cores, want 8", total)
	}
}

func TestOnePlusPartialAffinity(t *testing.T) {
	// Paper: only 5 of 8 cores accept pinning on the OnePlus; the A710
	// cluster is absent from the schedulable classes.
	d := NewOnePlus11()
	total := 0
	for _, c := range d.CPUClasses() {
		total += len(d.PU(c).CoreIDs)
	}
	if total != 6 {
		// 1 X3 + 2 A715 + 3 A510 = 6 listed; of the phone's 8 cores the
		// A710 pair is unpinnable and unlisted.
		t.Errorf("OnePlus schedulable cores = %d, want 6", total)
	}
}

func TestPUValidate(t *testing.T) {
	good := NewJetson().PUs[0]
	if err := good.Validate(); err != nil {
		t.Fatalf("valid PU rejected: %v", err)
	}
	cases := []func(*PU){
		func(p *PU) { p.Class = "" },
		func(p *PU) { p.Cores = 0 },
		func(p *PU) { p.BaseGHz = 0 },
		func(p *PU) { p.EffFlopsPerCycle = 0 },
		func(p *PU) { p.Lanes = 4 }, // CPU with lanes
		func(p *PU) { p.IrregPenalty = 9 },
		func(p *PU) { p.MemBWGBs = 0 },
		func(p *PU) { p.LaunchOverheadSec = -1 },
	}
	for i, corrupt := range cases {
		p := NewJetson().PUs[0]
		corrupt(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid PU accepted", i)
		}
	}
	gpu := NewJetson().PUs[1]
	gpu.Lanes = 0
	if err := gpu.Validate(); err == nil {
		t.Error("GPU without lanes accepted")
	}
}

func TestDeviceValidateCatchesDuplicates(t *testing.T) {
	d := NewJetson()
	d.PUs = append(d.PUs, d.PUs[0])
	if err := d.Validate(); err == nil {
		t.Error("duplicate class accepted")
	}
}

func TestEstimatePositiveEverywhere(t *testing.T) {
	for _, d := range Catalog() {
		for _, c := range d.Classes() {
			for _, cost := range []core.CostSpec{denseCost, sparseCost, memCost} {
				if got := d.Estimate(cost, c, nil); !(got > 0) || math.IsInf(got, 0) || math.IsNaN(got) {
					t.Errorf("%s/%s: Estimate = %v", d.Name, c, got)
				}
			}
		}
	}
}

func TestEstimateUnknownClassPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewPixel7a().Estimate(denseCost, "npu", nil)
}

func TestGPUWinsDenseCPUWinsIrregularOnMobile(t *testing.T) {
	// The heterogeneity premise of Fig. 1: dense regular work belongs on
	// the GPU; irregular divergent work belongs on big CPU cores —
	// on the mobile (Vulkan) GPUs.
	irregular := core.CostSpec{
		FLOPs: 20e6, Bytes: 6e6, ParallelFraction: 0.95,
		Divergence: 0.85, Irregularity: 0.85, WorkItems: 4096,
	}
	for _, name := range []string{Pixel7a, OnePlus11} {
		d, _ := DeviceByName(name)
		if gd, bd := d.Estimate(denseCost, core.ClassGPU, nil), d.Estimate(denseCost, core.ClassBig, nil); gd >= bd {
			t.Errorf("%s: dense GPU %.3gms !< big %.3gms", name, gd*1e3, bd*1e3)
		}
		if gi, bi := d.Estimate(irregular, core.ClassGPU, nil), d.Estimate(irregular, core.ClassBig, nil); gi <= bi {
			t.Errorf("%s: irregular GPU %.3gms !> big %.3gms", name, gi*1e3, bi*1e3)
		}
	}
}

func TestBigBeatsLittle(t *testing.T) {
	for _, d := range Catalog() {
		if d.PU(core.ClassLittle) == nil {
			continue
		}
		for _, cost := range []core.CostSpec{denseCost, sparseCost} {
			big := d.Estimate(cost, core.ClassBig, nil)
			little := d.Estimate(cost, core.ClassLittle, nil)
			if big >= little {
				t.Errorf("%s: big %.3gms !< little %.3gms", d.Name, big*1e3, little*1e3)
			}
		}
	}
}

func TestMemoryContentionSlowsMemBoundKernels(t *testing.T) {
	d := NewJetson()
	d.Governor = NominalGovernor{} // isolate the bandwidth effect
	iso := d.Estimate(memCost, core.ClassBig, nil)
	heavy := d.Estimate(memCost, core.ClassBig, Env{core.ClassGPU: {MemIntensity: 1}})
	if heavy <= iso {
		t.Errorf("mem-bound kernel unaffected by contention: iso %.3g heavy %.3g", iso, heavy)
	}
	// Compute-bound kernels should barely move without a governor effect.
	cb := core.CostSpec{FLOPs: 50e6, Bytes: 1e4, ParallelFraction: 0.99, WorkItems: 1 << 16}
	isoC := d.Estimate(cb, core.ClassBig, nil)
	heavyC := d.Estimate(cb, core.ClassBig, Env{core.ClassGPU: {MemIntensity: 1}})
	if rel := heavyC / isoC; rel > 1.05 {
		t.Errorf("compute-bound kernel slowed %.2fx by pure BW contention", rel)
	}
}

func TestGovernorInterpolation(t *testing.T) {
	g := &DVFSGovernor{NumClasses: 4, LoadedMult: map[core.PUClass]float64{"big": 0.7}}
	if got := g.Multiplier("big", nil); got != 1 {
		t.Errorf("idle multiplier = %v", got)
	}
	if got := g.Multiplier("big", []core.PUClass{"a", "b", "c"}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("full-load multiplier = %v, want 0.7", got)
	}
	if got := g.Multiplier("big", []core.PUClass{"a"}); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("1/3-load multiplier = %v, want 0.9", got)
	}
	// Unknown class and degenerate sizes stay nominal.
	if g.Multiplier("gpu", []core.PUClass{"a"}) != 1 {
		t.Error("unlisted class should be 1.0")
	}
	one := &DVFSGovernor{NumClasses: 1, LoadedMult: map[core.PUClass]float64{"x": 0.5}}
	if one.Multiplier("x", nil) != 1 {
		t.Error("single-class device should be 1.0")
	}
	// Oversized busy set clamps.
	if got := g.Multiplier("big", []core.PUClass{"a", "b", "c", "d", "e"}); math.Abs(got-0.7) > 1e-12 {
		t.Errorf("clamped multiplier = %v", got)
	}
}

func TestPixelGPUBoostsUnderLoad(t *testing.T) {
	// Sec. 5.3: mobile GPUs speed up under heavy CPU load. A
	// compute-bound GPU kernel must get *faster* in the heavy env.
	d := NewPixel7a()
	cb := core.CostSpec{FLOPs: 100e6, Bytes: 1e5, ParallelFraction: 0.999, WorkItems: 1 << 18}
	iso := d.Estimate(cb, core.ClassGPU, nil)
	heavy := d.Estimate(cb, core.ClassGPU, d.HeavyEnv(cb, core.ClassGPU))
	if heavy >= iso {
		t.Errorf("Pixel GPU did not boost: iso %.3gms heavy %.3gms", iso*1e3, heavy*1e3)
	}
}

func TestOnePlusLittleBoostsUnderLoad(t *testing.T) {
	d := NewOnePlus11()
	cb := core.CostSpec{FLOPs: 10e6, Bytes: 1e5, ParallelFraction: 0.99, WorkItems: 1 << 14}
	iso := d.Estimate(cb, core.ClassLittle, nil)
	heavy := d.Estimate(cb, core.ClassLittle, d.HeavyEnv(cb, core.ClassLittle))
	if heavy >= iso {
		t.Errorf("OnePlus little did not boost: iso %.3gms heavy %.3gms", iso*1e3, heavy*1e3)
	}
}

func TestJetsonEverythingSlowsUnderLoad(t *testing.T) {
	// The Jetson has no boost quirks: heavy co-location must cost time on
	// both classes (Fig. 7, right columns).
	for _, name := range []string{Jetson, JetsonLP} {
		d, _ := DeviceByName(name)
		for _, c := range d.Classes() {
			iso := d.Estimate(sparseCost, c, nil)
			heavy := d.Estimate(sparseCost, c, d.HeavyEnv(sparseCost, c))
			if heavy <= iso {
				t.Errorf("%s/%s: no slowdown under load (iso %.3g, heavy %.3g)", name, c, iso, heavy)
			}
		}
	}
}

func TestIntensityBounds(t *testing.T) {
	for _, d := range Catalog() {
		for _, c := range d.Classes() {
			for _, cost := range []core.CostSpec{denseCost, sparseCost, memCost} {
				got := d.Intensity(cost, c)
				if got < 0 || got > 1 {
					t.Errorf("%s/%s: intensity %v outside [0,1]", d.Name, c, got)
				}
			}
			if d.Intensity(core.CostSpec{FLOPs: 1e6}, c) != 0 {
				t.Errorf("%s/%s: zero-bytes kernel should have intensity 0", d.Name, c)
			}
		}
	}
	// Mem-bound kernels must have higher intensity than compute-bound.
	d := NewPixel7a()
	if d.Intensity(memCost, core.ClassBig) <= d.Intensity(denseCost, core.ClassBig) {
		t.Error("intensity ordering wrong")
	}
}

func TestHeavyEnvExcludesMeasuring(t *testing.T) {
	d := NewPixel7a()
	env := d.HeavyEnv(denseCost, core.ClassBig)
	if _, ok := env[core.ClassBig]; ok {
		t.Error("heavy env contains the measuring PU")
	}
	if len(env) != 3 {
		t.Errorf("heavy env size = %d, want 3", len(env))
	}
}

func TestSampleNoiseDeterministicAndCentered(t *testing.T) {
	d := NewPixel7a()
	rng1 := rand.New(rand.NewSource(1))
	rng2 := rand.New(rand.NewSource(1))
	a := d.Sample(denseCost, core.ClassBig, nil, rng1)
	b := d.Sample(denseCost, core.ClassBig, nil, rng2)
	if a != b {
		t.Error("same seed must give same sample")
	}
	// Mean of many samples should approach the estimate (lognormal bias
	// is ~sigma^2/2, well under the tolerance here).
	est := d.Estimate(denseCost, core.ClassBig, nil)
	rng := rand.New(rand.NewSource(7))
	sum := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		sum += d.Sample(denseCost, core.ClassBig, nil, rng)
	}
	mean := sum / n
	if math.Abs(mean-est)/est > 0.02 {
		t.Errorf("sample mean %.4g vs estimate %.4g", mean, est)
	}
	// Nil rng must be allowed (no noise).
	if got := d.Sample(denseCost, core.ClassBig, nil, nil); got != est {
		t.Error("nil rng should return the raw estimate")
	}
}

func TestOccupancyPenalizesTinyGPUKernels(t *testing.T) {
	d := NewJetson()
	small := core.CostSpec{FLOPs: 1e6, Bytes: 1e4, ParallelFraction: 0.99, WorkItems: 64}
	big := small
	big.WorkItems = 1 << 20
	ts := d.Estimate(small, core.ClassGPU, nil)
	tb := d.Estimate(big, core.ClassGPU, nil)
	if ts <= tb {
		t.Errorf("low-occupancy kernel not penalized: small %.3g big %.3g", ts, tb)
	}
}

func TestLaunchOverheadFloorsGPUTime(t *testing.T) {
	d := NewPixel7a()
	nothing := core.CostSpec{FLOPs: 1, Bytes: 0, ParallelFraction: 0, WorkItems: 1}
	if got := d.Estimate(nothing, core.ClassGPU, nil); got < d.PU(core.ClassGPU).LaunchOverheadSec {
		t.Errorf("GPU time %.3g below launch overhead", got)
	}
}

func TestSharedLLCPenaltyOnlyUnderLoad(t *testing.T) {
	d := NewJetson()
	d.Governor = NominalGovernor{}
	irr := core.CostSpec{FLOPs: 10e6, Bytes: 1e5, ParallelFraction: 0.95, Irregularity: 1, WorkItems: 4096}
	iso := d.Estimate(irr, core.ClassBig, nil)
	heavy := d.Estimate(irr, core.ClassBig, Env{core.ClassGPU: {MemIntensity: 0}})
	if heavy <= iso {
		t.Error("shared-LLC penalty missing under co-location")
	}
	// Regular kernels are immune to the LLC effect.
	reg := core.CostSpec{FLOPs: 10e6, Bytes: 1e5, ParallelFraction: 0.95, Irregularity: 0, WorkItems: 4096}
	isoR := d.Estimate(reg, core.ClassBig, nil)
	heavyR := d.Estimate(reg, core.ClassBig, Env{core.ClassGPU: {MemIntensity: 0}})
	if math.Abs(heavyR-isoR)/isoR > 1e-9 {
		t.Error("regular kernel hit by LLC penalty")
	}
}

func TestEnvBusyClassesDeterministic(t *testing.T) {
	e := Env{"gpu": {}, "big": {}, "little": {}}
	got := e.BusyClasses()
	want := []core.PUClass{"big", "gpu", "little"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BusyClasses = %v, want %v", got, want)
		}
	}
}

func TestPowerModel(t *testing.T) {
	d := NewJetson()
	// Idle draw is independent of mult; busy exceeds idle; boost is
	// superlinear.
	if d.Power(core.ClassBig, 0.5, false) != d.Power(core.ClassBig, 2, false) {
		t.Error("idle power should ignore the multiplier")
	}
	idle := d.Power(core.ClassBig, 1, false)
	busy := d.Power(core.ClassBig, 1, true)
	if busy <= idle {
		t.Errorf("busy %v !> idle %v", busy, idle)
	}
	boosted := d.Power(core.ClassBig, 1.2, true)
	want := idle + (busy-idle)*1.2*1.2*1.2
	if math.Abs(boosted-want) > 1e-9 {
		t.Errorf("cubic scaling broken: %v vs %v", boosted, want)
	}
	// mult <= 0 defends as nominal.
	if d.Power(core.ClassBig, 0, true) != busy {
		t.Error("zero multiplier should read as nominal")
	}
	if d.Power("npu", 1, true) != 0 {
		t.Error("unknown class should draw nothing")
	}
}

func TestTDPPlausible(t *testing.T) {
	// The Jetson's modes are specified at 25 W and 7 W; the model should
	// sit in those neighborhoods (within 2x).
	j := NewJetson().TDPWatts()
	if j < 12 || j > 50 {
		t.Errorf("Jetson TDP %v W implausible for the 25 W mode", j)
	}
	lp := NewJetsonLP().TDPWatts()
	if lp < 3.5 || lp > 14 {
		t.Errorf("Jetson-LP TDP %v W implausible for the 7 W mode", lp)
	}
	if lp >= j {
		t.Error("LP mode should draw less than the full mode")
	}
	// Phones stay in single-digit watts.
	for _, d := range []*Device{NewPixel7a(), NewOnePlus11()} {
		if w := d.TDPWatts(); w < 4 || w > 16 {
			t.Errorf("%s TDP %v W implausible", d.Name, w)
		}
	}
}

// Property tests on the performance model's basic sanity: more work
// never takes less time, and boosting the clock never slows a kernel.
func TestEstimateMonotoneInWork(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Catalog()[rng.Intn(4)]
		classes := d.Classes()
		c := classes[rng.Intn(len(classes))]
		cost := core.CostSpec{
			FLOPs: 1e5 + rng.Float64()*1e8, Bytes: rng.Float64() * 1e7,
			ParallelFraction: 0.5 + rng.Float64()*0.5,
			Divergence:       rng.Float64(), Irregularity: rng.Float64(),
			WorkItems: 1 + rng.Float64()*1e6,
		}
		bigger := cost
		bigger.FLOPs *= 1 + rng.Float64()*3
		bigger.Bytes *= 1 + rng.Float64()*3
		return d.Estimate(bigger, c, nil) >= d.Estimate(cost, c, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEstimateMonotoneInPenalties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := Catalog()[rng.Intn(4)]
		classes := d.Classes()
		c := classes[rng.Intn(len(classes))]
		cost := core.CostSpec{
			FLOPs: 1e6 + rng.Float64()*1e8, Bytes: rng.Float64() * 1e6,
			ParallelFraction: 0.9, Divergence: rng.Float64() * 0.5,
			Irregularity: rng.Float64() * 0.5, WorkItems: 1e5,
		}
		worse := cost
		worse.Divergence = cost.Divergence + rng.Float64()*0.5
		worse.Irregularity = cost.Irregularity + rng.Float64()*0.5
		return d.Estimate(worse, c, nil) >= d.Estimate(cost, c, nil)-1e-15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMoreInterferersNeverSpeedUpJetson(t *testing.T) {
	// On a boost-free device, adding interferers is monotone harmful.
	d := NewJetson()
	iso := d.Estimate(sparseCost, core.ClassBig, nil)
	one := d.Estimate(sparseCost, core.ClassBig, Env{core.ClassGPU: {MemIntensity: 0.5}})
	if one < iso {
		t.Errorf("one interferer sped up the Jetson CPU: %v < %v", one, iso)
	}
}
