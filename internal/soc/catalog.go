package soc

import (
	"fmt"

	"bettertogether/internal/core"
)

// Device names used throughout experiments, matching the paper's four
// evaluation platforms (Table 2; the Jetson appears twice because its
// low-power mode is treated as a separate device).
const (
	Pixel7a   = "pixel7a"
	OnePlus11 = "oneplus11"
	Jetson    = "jetson"
	JetsonLP  = "jetson-lp"
)

// Catalog returns fresh models of the four evaluation platforms. Numeric
// parameters are calibrated so the simulator reproduces the *shape* of
// the paper's measurements: per-stage PU orderings (Fig. 1), CPU-vs-GPU
// baseline ratios (Table 3), and interference ratios (Fig. 7). Effective
// flops/cycle values are far below architectural peak because they model
// the paper's portable, unvectorized OpenMP/Vulkan kernels, not tuned
// vendor libraries.
func Catalog() []*Device {
	return []*Device{
		NewPixel7a(),
		NewOnePlus11(),
		NewJetson(),
		NewJetsonLP(),
	}
}

// DeviceByName returns the catalog device with the given name.
func DeviceByName(name string) (*Device, error) {
	for _, d := range Catalog() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("soc: unknown device %q (have pixel7a, oneplus11, jetson, jetson-lp)", name)
}

// NewPixel7a models the Google Pixel 7a: Tensor G2 with 2× Cortex-X1
// (big), 2× Cortex-A78 (medium), 4× Cortex-A55 (little) and an Arm
// Mali-G710 MP7 GPU driven through Vulkan. Full 8-core affinity control.
func NewPixel7a() *Device {
	return &Device{
		Name:  Pixel7a,
		Label: "Google Pixel 7a",
		PUs: []PU{
			{
				Class: core.ClassBig, Kind: core.KindCPU,
				Cores: 2, CoreIDs: []int{6, 7}, BaseGHz: 2.85,
				EffFlopsPerCycle: 0.20, IrregPenalty: 0.30,
				LaunchOverheadSec: 18e-6, MemBWGBs: 11,
				IdleWatts: 0.12, BusyWatts: 3.6,
			},
			{
				Class: core.ClassMedium, Kind: core.KindCPU,
				Cores: 2, CoreIDs: []int{4, 5}, BaseGHz: 2.35,
				EffFlopsPerCycle: 0.17, IrregPenalty: 0.45,
				LaunchOverheadSec: 18e-6, MemBWGBs: 9,
				IdleWatts: 0.08, BusyWatts: 1.9,
			},
			{
				Class: core.ClassLittle, Kind: core.KindCPU,
				Cores: 4, CoreIDs: []int{0, 1, 2, 3}, BaseGHz: 1.80,
				EffFlopsPerCycle: 0.085, IrregPenalty: 0.90,
				LaunchOverheadSec: 22e-6, MemBWGBs: 5,
				IdleWatts: 0.05, BusyWatts: 0.9,
			},
			{
				Class: core.ClassGPU, Kind: core.KindGPU,
				Cores: 7, Lanes: 16, BaseGHz: 0.85,
				EffFlopsPerCycle: 1.3, ScalarFlopsPerCycle: 0.15,
				IrregPenalty: 2.8, DivergencePenalty: 4.0,
				LaunchOverheadSec: 150e-6, MemBWGBs: 17,
				OccupancyItemsPerLane: 6,
				IdleWatts:             0.15, BusyWatts: 4.2,
			},
		},
		DRAMBWGBs: 20,
		Governor: &DVFSGovernor{
			NumClasses: 4,
			LoadedMult: map[core.PUClass]float64{
				core.ClassBig:    0.73, // thermal-budget throttle
				core.ClassMedium: 0.86,
				core.ClassLittle: 0.74,
				core.ClassGPU:    1.35, // firmware boosts GPU under CPU load
			},
		},
		NoiseSigma:  0.05,
		UncoreWatts: 0.8,
	}
}

// NewOnePlus11 models the OnePlus 11: Snapdragon 8 Gen 2 with 1×
// Cortex-X3 (big), 2× Cortex-A715 (medium), 3× Cortex-A510 (little) and a
// Qualcomm Adreno 740 GPU driven through Vulkan. Only 5 of 8 cores accept
// affinity pinning, so the 2× Cortex-A710 cluster is not schedulable and
// does not appear as a PU class.
func NewOnePlus11() *Device {
	return &Device{
		Name:  OnePlus11,
		Label: "OnePlus 11",
		PUs: []PU{
			{
				Class: core.ClassBig, Kind: core.KindCPU,
				Cores: 1, CoreIDs: []int{7}, BaseGHz: 3.2,
				EffFlopsPerCycle: 0.45, IrregPenalty: 0.28,
				LaunchOverheadSec: 16e-6, MemBWGBs: 12,
				IdleWatts: 0.10, BusyWatts: 3.0,
			},
			{
				Class: core.ClassMedium, Kind: core.KindCPU,
				Cores: 2, CoreIDs: []int{5, 6}, BaseGHz: 2.8,
				EffFlopsPerCycle: 0.19, IrregPenalty: 0.42,
				LaunchOverheadSec: 16e-6, MemBWGBs: 10,
				IdleWatts: 0.08, BusyWatts: 2.2,
			},
			{
				Class: core.ClassLittle, Kind: core.KindCPU,
				Cores: 3, CoreIDs: []int{0, 1, 2}, BaseGHz: 2.0,
				EffFlopsPerCycle: 0.09, IrregPenalty: 0.85,
				LaunchOverheadSec: 20e-6, MemBWGBs: 6,
				IdleWatts: 0.05, BusyWatts: 0.8,
			},
			{
				Class: core.ClassGPU, Kind: core.KindGPU,
				Cores: 8, Lanes: 16, BaseGHz: 0.90,
				EffFlopsPerCycle: 1.3, ScalarFlopsPerCycle: 0.15,
				IrregPenalty: 2.0, DivergencePenalty: 4.4,
				LaunchOverheadSec: 130e-6, MemBWGBs: 21,
				OccupancyItemsPerLane: 6,
				IdleWatts:             0.15, BusyWatts: 4.8,
			},
		},
		DRAMBWGBs: 26,
		Governor: &DVFSGovernor{
			NumClasses: 4,
			LoadedMult: map[core.PUClass]float64{
				core.ClassBig:    0.72,
				core.ClassMedium: 1.04, // unaffected on this device (Fig. 7)
				core.ClassLittle: 2.00, // A510 cluster boosts under load
				core.ClassGPU:    2.00, // strong firmware GPU boost
			},
		},
		NoiseSigma:  0.05,
		UncoreWatts: 0.9,
	}
}

// NewJetson models the NVIDIA Jetson Orin Nano 8GB: 6× Cortex-A78AE in a
// single homogeneous cluster plus an Ampere iGPU driven through CUDA.
// CPU and GPU share the last-level cache (Sec. 2.1), so irregular
// working sets interfere beyond DRAM bandwidth.
func NewJetson() *Device {
	return &Device{
		Name:  Jetson,
		Label: "Jetson Orin Nano",
		PUs: []PU{
			{
				Class: core.ClassBig, Kind: core.KindCPU,
				Cores: 6, CoreIDs: []int{0, 1, 2, 3, 4, 5}, BaseGHz: 1.7,
				EffFlopsPerCycle: 0.50, IrregPenalty: 0.35,
				LaunchOverheadSec: 12e-6, MemBWGBs: 25,
				IdleWatts: 0.5, BusyWatts: 9.0,
			},
			{
				Class: core.ClassGPU, Kind: core.KindGPU,
				Cores: 8, Lanes: 128, BaseGHz: 0.625,
				EffFlopsPerCycle: 0.35, ScalarFlopsPerCycle: 0.25,
				IrregPenalty: 1.2, DivergencePenalty: 1.6,
				LaunchOverheadSec: 25e-6, MemBWGBs: 42,
				OccupancyItemsPerLane: 4,
				IdleWatts:             0.6, BusyWatts: 12.0,
			},
		},
		DRAMBWGBs:  45,
		SharedLLC:  true,
		LLCPenalty: 0.70,
		Governor: &DVFSGovernor{
			NumClasses: 2,
			LoadedMult: map[core.PUClass]float64{
				core.ClassBig: 0.84, // power-budget sharing with the GPU
				core.ClassGPU: 0.94,
			},
		},
		NoiseSigma:  0.02,
		UncoreWatts: 2.5,
	}
}

// NewJetsonLP models the Jetson Orin Nano's 7W low-power mode: two CPU
// cores shut off, the remaining four clocked at 729 MHz, and the memory
// controller slowed. The GPU keeps its clocks but the shrunken DRAM
// budget makes it far more sensitive to CPU co-location (Fig. 7 shows a
// 1.74× GPU slowdown in this mode).
func NewJetsonLP() *Device {
	return &Device{
		Name:  JetsonLP,
		Label: "Jetson Orin Nano (low-power)",
		PUs: []PU{
			{
				Class: core.ClassBig, Kind: core.KindCPU,
				Cores: 4, CoreIDs: []int{0, 1, 2, 3}, BaseGHz: 0.729,
				EffFlopsPerCycle: 0.50, IrregPenalty: 0.35,
				LaunchOverheadSec: 12e-6, MemBWGBs: 14,
				IdleWatts: 0.3, BusyWatts: 2.2,
			},
			{
				Class: core.ClassGPU, Kind: core.KindGPU,
				Cores: 8, Lanes: 128, BaseGHz: 0.625,
				EffFlopsPerCycle: 0.35, ScalarFlopsPerCycle: 0.25,
				IrregPenalty: 1.2, DivergencePenalty: 1.6,
				LaunchOverheadSec: 25e-6, MemBWGBs: 19,
				OccupancyItemsPerLane: 4,
				IdleWatts:             0.4, BusyWatts: 3.2,
			},
		},
		DRAMBWGBs:  20,
		SharedLLC:  true,
		LLCPenalty: 0.70,
		Governor: &DVFSGovernor{
			NumClasses: 2,
			LoadedMult: map[core.PUClass]float64{
				core.ClassBig: 0.92,
				core.ClassGPU: 0.64, // tight 7W budget throttles the GPU under CPU load
			},
		},
		NoiseSigma:  0.025,
		UncoreWatts: 1.0,
	}
}
