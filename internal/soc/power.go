package soc

import "bettertogether/internal/core"

// Power model. The paper motivates edge processing with energy savings
// (Sec. 1) but does not evaluate energy; this extension quantifies it.
// Each PU draws IdleWatts when powered but idle and BusyWatts at full
// load and nominal clock; dynamic power scales with the cube of the
// DVFS multiplier (the classic f·V² law with V tracking f), so governor
// boosts are expensive and throttles cheap. The device's UncoreWatts
// (memory controller, interconnect, rails) flows whenever the SoC is on.

// Power returns the instantaneous draw in watts of the given class when
// busy at DVFS multiplier mult, or idle.
func (d *Device) Power(class core.PUClass, mult float64, busy bool) float64 {
	pu := d.PU(class)
	if pu == nil {
		return 0
	}
	if !busy {
		return pu.IdleWatts
	}
	if mult <= 0 {
		mult = 1
	}
	dynamic := pu.BusyWatts - pu.IdleWatts
	if dynamic < 0 {
		dynamic = 0
	}
	return pu.IdleWatts + dynamic*mult*mult*mult
}

// TDPWatts returns the nominal all-busy draw — a sanity bound for
// calibration (the Jetson's 25 W / 7 W modes).
func (d *Device) TDPWatts() float64 {
	total := d.UncoreWatts
	for i := range d.PUs {
		total += d.Power(d.PUs[i].Class, 1, true)
	}
	return total
}
