// Package soc simulates the heterogeneous edge SoCs the paper evaluates
// on (Google Pixel 7a, OnePlus 11, NVIDIA Jetson Orin Nano in normal and
// low-power mode). The real devices are unavailable in this environment,
// so the simulator supplies the *phenomena* BetterTogether exists to
// handle:
//
//   - per-PU performance heterogeneity (out-of-order big cores vs in-order
//     little cores vs lockstep SIMT GPUs, Sec. 2.1);
//   - intra-application interference: execution time on one PU depends on
//     what the other PUs are doing, through shared-DRAM bandwidth
//     contention, shared last-level caches, and vendor DVFS governors
//     that throttle or boost clocks under load (Sec. 5.3);
//   - measurement noise.
//
// The framework proper (profiler, optimizer, implementer) treats this
// package exactly as it would treat real silicon: it only ever observes
// sampled latencies. Nothing outside internal/soc reads the analytic
// model.
package soc

import (
	"fmt"
	"math"

	"bettertogether/internal/core"
)

// PU models one processing-unit class: a cluster of identical CPU cores
// or an integrated GPU.
type PU struct {
	// Class is the schedulable identity ("big", "medium", "little", "gpu").
	Class core.PUClass
	// Kind distinguishes CPU clusters from GPUs.
	Kind core.PUKind
	// Cores is the number of CPU cores in the cluster, or the number of
	// shader cores / streaming multiprocessors for a GPU.
	Cores int
	// CoreIDs lists the device-local logical core IDs of the cluster —
	// the affinity map of the target-system specification (paper Fig. 2,
	// input 2). Empty for GPUs.
	CoreIDs []int
	// BaseGHz is the nominal clock.
	BaseGHz float64
	// EffFlopsPerCycle is the *achieved* flops per cycle per core (or per
	// GPU lane) for regular, well-parallelized code — it folds in ISA
	// width and typical compiler efficiency, which is why CPU values are
	// well below architectural peak.
	EffFlopsPerCycle float64
	// Lanes is the SIMT width per GPU shader core (0 for CPUs).
	Lanes int
	// ScalarFlopsPerCycle is the achieved flops/cycle of a *single
	// thread* of serial code on this PU. For CPUs it defaults to
	// EffFlopsPerCycle (an out-of-order core runs serial code about as
	// well as parallel code); for GPUs it must be set explicitly and is
	// small, because one SIMT lane is in-order and latency-bound.
	ScalarFlopsPerCycle float64
	// IrregPenalty is the exponential decay rate of throughput with
	// memory-access irregularity: efficiency = exp(-IrregPenalty × I).
	// Small for big out-of-order cores, larger for in-order little cores,
	// largest for GPUs whose coalescing collapses under indirection
	// (Sec. 2.1).
	IrregPenalty float64
	// DivergencePenalty is the exponential decay rate of GPU throughput
	// with control-flow divergence: efficiency = exp(-DivergencePenalty ×
	// D). Divergent warps serialize lane groups and split memory
	// transactions, so the compounding is multiplicative. 0 for CPUs.
	DivergencePenalty float64
	// LaunchOverheadSec is the fixed per-kernel dispatch cost: OpenMP
	// fork/join for CPU clusters, CUDA/Vulkan submission for GPUs.
	LaunchOverheadSec float64
	// MemBWGBs is the DRAM bandwidth this PU can draw when alone.
	MemBWGBs float64
	// OccupancyItemsPerLane is how many resident work items per lane a
	// GPU needs to hide memory latency; kernels with fewer run at
	// proportionally reduced occupancy. 0 for CPUs.
	OccupancyItemsPerLane float64
	// IdleWatts and BusyWatts bound the cluster's power draw: idle but
	// powered, and fully loaded at nominal clock. Dynamic power scales
	// with the cube of the DVFS multiplier (see Device.Power).
	IdleWatts, BusyWatts float64
}

// TotalLanes returns the number of parallel execution lanes: CPU cores,
// or SMs × SIMT width for GPUs.
func (p *PU) TotalLanes() int {
	if p.Kind == core.KindGPU {
		return p.Cores * p.Lanes
	}
	return p.Cores
}

// laneRate returns achieved flops/s of a single lane at clock multiplier
// mult, before irregularity penalties.
func (p *PU) laneRate(mult float64) float64 {
	return p.BaseGHz * 1e9 * p.EffFlopsPerCycle * mult
}

// scalarRate returns achieved flops/s of a single serial thread.
func (p *PU) scalarRate(mult float64) float64 {
	sf := p.ScalarFlopsPerCycle
	if sf == 0 {
		sf = p.EffFlopsPerCycle
	}
	return p.BaseGHz * 1e9 * sf * mult
}

// computeSeconds returns the pure compute time of cost on this PU at the
// given clock multiplier, ignoring memory contention: an Amdahl
// decomposition into a single-thread serial part and a parallel part at
// efficiency degraded exponentially by irregularity (CPU and GPU) and by
// divergence and occupancy (GPU only).
func (p *PU) computeSeconds(cost core.CostSpec, mult float64) float64 {
	if cost.FLOPs == 0 {
		return 0
	}
	eff := math.Exp(-cost.Irregularity * p.IrregPenalty)
	occ := 1.0
	if p.Kind == core.KindGPU {
		eff *= math.Exp(-cost.Divergence * p.DivergencePenalty)
		need := float64(p.TotalLanes()) * p.OccupancyItemsPerLane
		if need > 0 && cost.WorkItems < need {
			occ = cost.WorkItems / need
			if occ < 0.01 {
				occ = 0.01
			}
		}
	}
	serial := (1 - cost.ParallelFraction) * cost.FLOPs / p.scalarRate(mult)
	parallel := cost.ParallelFraction * cost.FLOPs /
		(p.laneRate(mult) * float64(p.TotalLanes()) * eff * occ)
	return serial + parallel
}

// memSecondsAlone returns the DRAM streaming time with the PU's full
// bandwidth to itself.
func (p *PU) memSecondsAlone(cost core.CostSpec) float64 {
	if cost.Bytes == 0 || p.MemBWGBs == 0 {
		return 0
	}
	return cost.Bytes / (p.MemBWGBs * 1e9)
}

// Validate checks parameter sanity.
func (p *PU) Validate() error {
	switch {
	case p.Class == "":
		return fmt.Errorf("soc: PU has empty class")
	case p.Cores <= 0:
		return fmt.Errorf("soc: PU %q has %d cores", p.Class, p.Cores)
	case p.BaseGHz <= 0 || p.EffFlopsPerCycle <= 0:
		return fmt.Errorf("soc: PU %q has non-positive rate parameters", p.Class)
	case p.Kind == core.KindGPU && p.Lanes <= 0:
		return fmt.Errorf("soc: GPU %q needs Lanes > 0", p.Class)
	case p.Kind == core.KindCPU && p.Lanes != 0:
		return fmt.Errorf("soc: CPU %q must not set Lanes", p.Class)
	case p.IrregPenalty < 0 || p.IrregPenalty > 8 || p.DivergencePenalty < 0 || p.DivergencePenalty > 8:
		return fmt.Errorf("soc: PU %q penalty rates outside [0,8]", p.Class)
	case p.Kind == core.KindGPU && p.ScalarFlopsPerCycle <= 0:
		return fmt.Errorf("soc: GPU %q needs an explicit ScalarFlopsPerCycle", p.Class)
	case p.MemBWGBs <= 0:
		return fmt.Errorf("soc: PU %q needs memory bandwidth", p.Class)
	case math.IsNaN(p.LaunchOverheadSec) || p.LaunchOverheadSec < 0:
		return fmt.Errorf("soc: PU %q has invalid launch overhead", p.Class)
	}
	return nil
}
