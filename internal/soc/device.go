package soc

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"bettertogether/internal/core"
)

// Load describes one busy PU's contribution to the interference
// environment: how much of its peak DRAM draw its current kernel uses.
type Load struct {
	// MemIntensity in [0,1]: 1 means the kernel is fully memory-bound on
	// that PU, 0 means purely compute-bound.
	MemIntensity float64
}

// Env is the interference environment seen by an estimate: the set of
// *other* PU classes currently executing, with their memory loads. A nil
// or empty Env is the isolated case.
type Env map[core.PUClass]Load

// BusyClasses returns the environment's classes in deterministic order.
func (e Env) BusyClasses() []core.PUClass {
	out := make([]core.PUClass, 0, len(e))
	for c := range e {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Device is one simulated SoC: a set of PU classes over shared DRAM,
// governed by a DVFS policy.
type Device struct {
	// Name identifies the device ("pixel7a", "oneplus11", "jetson",
	// "jetson-lp").
	Name string
	// Label is the human-readable name used in reports.
	Label string
	// PUs are the schedulable classes.
	PUs []PU
	// DRAMBWGBs is the total shared memory-controller bandwidth.
	DRAMBWGBs float64
	// SharedLLC marks devices where CPU and GPU share a last-level cache
	// (the Jetson, Sec. 2.1); co-running irregular kernels then evict
	// each other's working sets.
	SharedLLC bool
	// LLCPenalty is the extra slowdown at Irregularity=1 under full
	// co-location when SharedLLC is set.
	LLCPenalty float64
	// Governor is the DVFS policy.
	Governor Governor
	// NoiseSigma is the lognormal measurement-noise scale of the
	// platform; unrooted Android phones are noisier than the Jetson.
	NoiseSigma float64
	// UncoreWatts is the always-on draw of the memory controller,
	// interconnect, and rails.
	UncoreWatts float64
}

// PU returns the class's model, or nil if the device lacks it.
func (d *Device) PU(class core.PUClass) *PU {
	for i := range d.PUs {
		if d.PUs[i].Class == class {
			return &d.PUs[i]
		}
	}
	return nil
}

// Classes returns all PU classes in catalog order.
func (d *Device) Classes() []core.PUClass {
	out := make([]core.PUClass, len(d.PUs))
	for i := range d.PUs {
		out[i] = d.PUs[i].Class
	}
	return out
}

// CPUClasses returns only the CPU clusters, in catalog order.
func (d *Device) CPUClasses() []core.PUClass {
	var out []core.PUClass
	for i := range d.PUs {
		if d.PUs[i].Kind == core.KindCPU {
			out = append(out, d.PUs[i].Class)
		}
	}
	return out
}

// GPUClass returns the device's GPU class (all catalog devices have
// exactly one GPU).
func (d *Device) GPUClass() core.PUClass {
	for i := range d.PUs {
		if d.PUs[i].Kind == core.KindGPU {
			return d.PUs[i].Class
		}
	}
	return ""
}

// Validate checks the device model's consistency.
func (d *Device) Validate() error {
	if d.Name == "" {
		return fmt.Errorf("soc: device has no name")
	}
	if len(d.PUs) == 0 {
		return fmt.Errorf("soc: device %q has no PUs", d.Name)
	}
	if d.DRAMBWGBs <= 0 {
		return fmt.Errorf("soc: device %q has no DRAM bandwidth", d.Name)
	}
	if d.Governor == nil {
		return fmt.Errorf("soc: device %q has no governor", d.Name)
	}
	seen := map[core.PUClass]bool{}
	for i := range d.PUs {
		if err := d.PUs[i].Validate(); err != nil {
			return fmt.Errorf("soc: device %q: %w", d.Name, err)
		}
		if seen[d.PUs[i].Class] {
			return fmt.Errorf("soc: device %q has duplicate class %q", d.Name, d.PUs[i].Class)
		}
		seen[d.PUs[i].Class] = true
	}
	return nil
}

// Intensity returns the memory intensity of a kernel on a PU class: the
// fraction of its standalone runtime that is memory-bound. Callers use it
// to build Env entries for co-running kernels.
func (d *Device) Intensity(cost core.CostSpec, class core.PUClass) float64 {
	pu := d.PU(class)
	if pu == nil {
		panic(fmt.Sprintf("soc: device %q has no PU class %q", d.Name, class))
	}
	tc := pu.computeSeconds(cost, 1)
	tm := pu.memSecondsAlone(cost)
	if tm <= 0 {
		return 0
	}
	if tc <= 0 {
		return 1
	}
	r := tm / tc
	if r > 1 {
		return 1
	}
	return r
}

// Estimate returns the modeled execution time in seconds of one kernel
// invocation with the given cost on the given PU class, under the given
// interference environment. This is the simulator's ground truth; the
// framework only ever sees it through Sample (with noise) or through the
// pipeline's virtual clock.
func (d *Device) Estimate(cost core.CostSpec, class core.PUClass, env Env) float64 {
	pu := d.PU(class)
	if pu == nil {
		panic(fmt.Sprintf("soc: device %q has no PU class %q", d.Name, class))
	}
	busy := env.BusyClasses()
	mult := d.Governor.Multiplier(class, busy)

	tCompute := pu.computeSeconds(cost, mult)

	// Shared-DRAM contention: bandwidth is split in proportion to demand
	// when the controller is oversubscribed. My demand is my peak draw
	// scaled by my kernel's memory intensity; others contribute their
	// declared loads.
	tMem := 0.0
	if cost.Bytes > 0 {
		myIntensity := d.Intensity(cost, class)
		myDemand := pu.MemBWGBs * myIntensity
		total := myDemand
		// Accumulate in device PU order, not env map order: ranging over
		// the map sums in randomized order, which perturbs the total by an
		// ULP between runs and breaks bit-exact reproducibility.
		for i := range d.PUs {
			if load, ok := env[d.PUs[i].Class]; ok {
				total += d.PUs[i].MemBWGBs * load.MemIntensity
			}
		}
		avail := pu.MemBWGBs
		if total > d.DRAMBWGBs && myDemand > 0 {
			share := d.DRAMBWGBs * myDemand / total
			if share < avail {
				avail = share
			}
		}
		tMem = cost.Bytes / (avail * 1e9)
	}

	dispatches := cost.Dispatches
	if dispatches < 1 {
		dispatches = 1
	}
	t := pu.LaunchOverheadSec*dispatches + math.Max(tCompute, tMem)

	// Shared-LLC pollution: irregular working sets co-located with other
	// activity miss more (Jetson only).
	if d.SharedLLC && len(busy) > 0 && cost.Irregularity > 0 {
		frac := float64(len(busy)) / float64(len(d.PUs)-1)
		if frac > 1 {
			frac = 1
		}
		t *= 1 + cost.Irregularity*d.LLCPenalty*frac
	}
	return t
}

// Sample returns Estimate perturbed by the device's multiplicative
// lognormal measurement noise. It is what the profiler and the
// discrete-event "measurements" observe, standing in for the paper's
// hardware timers.
func (d *Device) Sample(cost core.CostSpec, class core.PUClass, env Env, rng *rand.Rand) float64 {
	t := d.Estimate(cost, class, env)
	if d.NoiseSigma > 0 && rng != nil {
		t *= math.Exp(d.NoiseSigma * rng.NormFloat64())
	}
	return t
}

// HeavyEnv builds the interference-heavy profiling environment of
// Sec. 3.2: every PU class except `measuring` runs the same computation
// as the measuring PU. Intensities are computed per busy class from that
// kernel's cost.
func (d *Device) HeavyEnv(cost core.CostSpec, measuring core.PUClass) Env {
	env := Env{}
	for i := range d.PUs {
		c := d.PUs[i].Class
		if c == measuring {
			continue
		}
		env[c] = Load{MemIntensity: d.Intensity(cost, c)}
	}
	return env
}
