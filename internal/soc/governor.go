package soc

import "bettertogether/internal/core"

// Governor models the device's DVFS / power-management policy: given the
// set of busy PU classes, it returns a clock multiplier for a target
// class. This is where the vendor-specific behaviour of Sec. 5.3 lives —
// the effects the paper could not find documentation for and confirmed
// with a mobile vendor's engineers:
//
//   - mobile GPUs *speed up* under heavy CPU load (firmware boosts GPU
//     clocks when the system looks busy);
//   - the OnePlus A510 little cores boost frequency under system load;
//   - CPU clusters throttle as the shared thermal/power budget fills.
type Governor interface {
	// Multiplier returns the clock multiplier for target when the given
	// other classes are busy. 1.0 means nominal clock; >1 is a boost.
	Multiplier(target core.PUClass, busyOthers []core.PUClass) float64
}

// DVFSGovernor interpolates each class's multiplier linearly between 1.0
// (system idle apart from the target) and LoadedMult[class] (every other
// class busy), by the fraction of other classes that are busy. This
// captures the monotone "more load, more reaction" behaviour observed on
// all four devices while staying simple enough to calibrate against
// Fig. 7.
type DVFSGovernor struct {
	// NumClasses is the total number of PU classes on the device, used to
	// normalize the load fraction.
	NumClasses int
	// LoadedMult maps each class to its clock multiplier under full
	// system load. Classes absent from the map run at nominal clock
	// regardless of load.
	LoadedMult map[core.PUClass]float64
}

// Multiplier implements Governor.
func (g *DVFSGovernor) Multiplier(target core.PUClass, busyOthers []core.PUClass) float64 {
	loaded, ok := g.LoadedMult[target]
	if !ok || g.NumClasses <= 1 {
		return 1
	}
	frac := float64(len(busyOthers)) / float64(g.NumClasses-1)
	if frac > 1 {
		frac = 1
	}
	return 1 + (loaded-1)*frac
}

// NominalGovernor always returns 1.0 — useful in tests to isolate the
// bandwidth-contention part of the interference model.
type NominalGovernor struct{}

// Multiplier implements Governor.
func (NominalGovernor) Multiplier(core.PUClass, []core.PUClass) float64 { return 1 }
