package soc

import (
	"math"

	"bettertogether/internal/core"
)

// Clone returns an independent copy of the environment. A nil receiver
// clones to an empty, non-nil Env, so callers can overlay onto it.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for c, l := range e {
		out[c] = l
	}
	return out
}

// Add folds another load into the class's entry. Memory intensities sum
// and saturate at 1: two co-runners on (or behind) the same class cannot
// draw more than the class's full bandwidth, but together they pin it.
func (e Env) Add(class core.PUClass, l Load) {
	cur := e[class]
	cur.MemIntensity += l.MemIntensity
	if cur.MemIntensity > 1 {
		cur.MemIntensity = 1
	}
	e[class] = cur
}

// Overlay returns a new Env combining e with other via Add. Either side
// may be nil; the receiver is never mutated.
func (e Env) Overlay(other Env) Env {
	out := e.Clone()
	for _, c := range other.BusyClasses() {
		out.Add(c, other[c])
	}
	return out
}

// Delta returns the L∞ distance between two environments: the largest
// absolute per-class MemIntensity difference over the union of their
// classes (an absent class counts as zero load). Either side may be
// nil. The runtime's incremental re-planner compares this against its
// skip threshold to decide whether churn moved the environment enough
// to justify a new solve.
func (e Env) Delta(other Env) float64 {
	d := 0.0
	for c, l := range e {
		if diff := math.Abs(l.MemIntensity - other[c].MemIntensity); diff > d {
			d = diff
		}
	}
	for c, l := range other {
		if _, ok := e[c]; ok {
			continue
		}
		if diff := math.Abs(l.MemIntensity); diff > d {
			d = diff
		}
	}
	return d
}
