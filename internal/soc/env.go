package soc

import (
	"fmt"
	"math"
	"strings"

	"bettertogether/internal/core"
)

// clampIntensity sanitizes one MemIntensity the same way
// schedcache.QuantizeEnv buckets them: NaN and negative values clamp to
// zero, values past full bandwidth saturate at 1. Every Env combinator
// routes intensities through here so a poisoned load (a NaN interference
// ratio, a miscalibrated profile) can never propagate — in particular it
// can never reach Delta, where a NaN compares false against every
// threshold and would silently disable re-planning forever.
func clampIntensity(v float64) float64 {
	if math.IsNaN(v) || v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Clone returns an independent copy of the environment. A nil receiver
// clones to an empty, non-nil Env, so callers can overlay onto it.
func (e Env) Clone() Env {
	out := make(Env, len(e))
	for c, l := range e {
		out[c] = l
	}
	return out
}

// Add folds another load into the class's entry. Memory intensities sum
// and saturate at 1: two co-runners on (or behind) the same class cannot
// draw more than the class's full bandwidth, but together they pin it.
// Both sides are clamped first, so Add (and Overlay, built on it) refuse
// to propagate NaN or negative intensities into the environment.
func (e Env) Add(class core.PUClass, l Load) {
	cur := e[class]
	cur.MemIntensity = clampIntensity(clampIntensity(cur.MemIntensity) + clampIntensity(l.MemIntensity))
	e[class] = cur
}

// Overlay returns a new Env combining e with other via Add. Either side
// may be nil; the receiver is never mutated.
func (e Env) Overlay(other Env) Env {
	out := e.Clone()
	for _, c := range other.BusyClasses() {
		out.Add(c, other[c])
	}
	return out
}

// Signature renders the environment's quantization-bucket identity as a
// stable string: each class's MemIntensity rounded to the nearest
// multiple of bucket (clamped into [0,1], NaN-free), classes in sorted
// order, zero buckets dropped. Two environments that quantize to the
// same bucket share a signature; nil, empty, and all-zero environments
// all render "". The online profiler keys its per-(stage, PU, Env)
// estimate cells on this, so near-identical interference contexts pool
// their samples instead of fragmenting into singleton cells. A
// non-positive (or NaN/Inf) bucket falls back to 0.05, matching
// schedcache.DefaultBucket.
func (e Env) Signature(bucket float64) string {
	if bucket <= 0 || math.IsNaN(bucket) || math.IsInf(bucket, 0) {
		bucket = 0.05
	}
	var b strings.Builder
	for _, c := range e.BusyClasses() {
		idx := int(math.Floor(clampIntensity(e[c].MemIntensity)/bucket + 0.5))
		if idx == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%d", c, idx)
	}
	return b.String()
}

// Delta returns the L∞ distance between two environments: the largest
// absolute per-class MemIntensity difference over the union of their
// classes (an absent class counts as zero load). Either side may be
// nil. The runtime's incremental re-planner compares this against its
// skip threshold to decide whether churn moved the environment enough
// to justify a new solve.
//
// Intensities are clamped (NaN/negative to 0, >1 to 1) before
// differencing: a NaN would otherwise poison the comparison — NaN > d is
// false for every d, so a single poisoned class would report delta 0 and
// permanently suppress re-planning.
func (e Env) Delta(other Env) float64 {
	d := 0.0
	for c, l := range e {
		if diff := math.Abs(clampIntensity(l.MemIntensity) - clampIntensity(other[c].MemIntensity)); diff > d {
			d = diff
		}
	}
	for c, l := range other {
		if _, ok := e[c]; ok {
			continue
		}
		if diff := clampIntensity(l.MemIntensity); diff > d {
			d = diff
		}
	}
	return d
}
