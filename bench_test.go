package bettertogether

// One benchmark per paper artifact (tables and figures of the
// evaluation, Sec. 5, plus the Sec. 1 motivating claim). Each iteration
// regenerates the artifact end to end — profiling, optimization and
// simulated execution included — so the reported time is the cost of the
// full reproduction pipeline, and the printed metrics let the bench
// double as a regression gate on the paper-shape results.
//
// The mapping to the paper is indexed in DESIGN.md §4; measured-vs-paper
// values are recorded in EXPERIMENTS.md.

import (
	"testing"

	"bettertogether/internal/experiments"
)

func BenchmarkIntroClaim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.IntroClaim()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.IsolatedErrPct, "iso-err-%")
			b.ReportMetric(res.BTPearson, "bt-pearson")
		}
	}
}

func BenchmarkFig1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// sort stage: GPU vs big latency ratio (paper: GPU poor).
			b.ReportMetric(res.Seconds[0][3]/res.Seconds[0][0], "sort-gpu/big")
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			c := res.Cell("pixel7a", "octree-uniform")
			b.ReportMetric(c.GPU/c.CPU, "tree-pixel-gpu/cpu")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, _, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Geomean, "geomean-speedup")
			b.ReportMetric(res.Max, "max-speedup")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.Fig5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.BT.Pearson, "bt-pearson")
			b.ReportMetric(res.Isolated.Pearson, "iso-pearson")
		}
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.BTAvg, "bt-mean-corr")
			b.ReportMetric(res.IsolatedAvg, "iso-mean-corr")
		}
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.AutotuneGain, "autotune-gain")
		}
	}
}

func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Ratios["pixel7a"]["gpu"], "pixel-gpu-ratio")
			b.ReportMetric(res.Ratios["jetson-lp"]["gpu"], "lp-gpu-ratio")
		}
	}
}

// BenchmarkFullEvaluation regenerates every artifact in sequence — the
// paper's entire Sec. 5 in one number.
func BenchmarkFullEvaluation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		if _, _, err := s.Fig1(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.IntroClaim(); err != nil {
			b.Fatal(err)
		}
		if _, _, _, err := s.Fig4(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Fig5(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Fig6(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Table4(); err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Fig7(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks — the design-choice sweeps DESIGN.md calls out.

func BenchmarkAblationDataParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.AblationDataParallel()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.GeomeanDPOverBT, "dp/bt-geomean")
		}
	}
}

func BenchmarkAblationK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.AblationK()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Measured[0]/res.Measured[len(res.Measured)-1], "k40-vs-k1-gain")
		}
	}
}

func BenchmarkAblationBuffers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.AblationBuffers()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.PerTask[0]/res.PerTask[len(res.PerTask)-1], "pipelining-speedup")
		}
	}
}

func BenchmarkAblationReps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.AblationReps()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Pearson[len(res.Pearson)-1], "reps30-pearson")
		}
	}
}

func BenchmarkExtEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.ExtEnergy()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.GeomeanSavingsVsBest, "base/bt-energy")
		}
	}
}

func BenchmarkAblationSlack(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.AblationSlack()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.BestMs[0]/res.BestMs[2], "tight-vs-default")
		}
	}
}

func BenchmarkExtVision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.NewSuite()
		res, _, err := s.ExtVision()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Geomean, "vision-geomean")
		}
	}
}
