package btapps

import (
	"math"
	"strings"
	"sync"
	"testing"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/apps/vision"
	"bettertogether/pkg/bt"
)

func TestByNameAndAliases(t *testing.T) {
	for _, name := range Names {
		app, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if len(app.Stages) == 0 {
			t.Fatalf("%q has no stages", name)
		}
	}
	for alias, want := range map[string]string{
		"dense": "alexnet-dense", "sparse": "alexnet-sparse",
		"tree": "octree-uniform", "camera": "vision", "SPARSE": "alexnet-sparse",
	} {
		app, err := ByName(alias)
		if err != nil {
			t.Fatalf("alias %q: %v", alias, err)
		}
		if app.Name != want {
			t.Errorf("alias %q resolved to %q, want %q", alias, app.Name, want)
		}
	}
	if _, err := ByName("nonesuch"); err == nil || !strings.Contains(err.Error(), "unknown") {
		t.Errorf("unknown app error = %v", err)
	}
}

func TestOctreeSizedDistributions(t *testing.T) {
	for _, d := range []string{"", "uniform", "clustered", "surface"} {
		if _, err := OctreeSized(1024, d); err != nil {
			t.Errorf("distribution %q: %v", d, err)
		}
	}
	if _, err := OctreeSized(1024, "donut"); err == nil {
		t.Error("unknown distribution accepted")
	}
}

// validateOutput checks one completed task's output for each workload:
// the pipeline must produce a structurally valid result, not just
// terminate.
func validateOutput(t *testing.T, appName string, task *bt.TaskObject) {
	t.Helper()
	switch p := task.Payload.(type) {
	case *octree.Task:
		if p.TotalNodes <= 0 || len(p.Result.Nodes) == 0 {
			t.Errorf("octree task %d: empty octree (total=%d)", task.Seq, p.TotalNodes)
			return
		}
		if p.Result.Root < 0 || int(p.Result.Root) >= len(p.Result.Nodes) {
			t.Errorf("octree task %d: root %d out of range", task.Seq, p.Result.Root)
		}
	case *alexnet.Task:
		sum := 0.0
		for _, v := range p.Logits.Data {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Errorf("alexnet task %d: non-finite logit", task.Seq)
				return
			}
			sum += math.Abs(float64(v))
		}
		if sum == 0 {
			t.Errorf("alexnet task %d: all-zero logits", task.Seq)
		}
	default:
		vt := vision.Unwrap(task.Payload)
		if len(vt.Out.Data) != (vt.W/2)*(vt.H/2) {
			t.Errorf("vision task %d: output size %d", task.Seq, len(vt.Out.Data))
			return
		}
		sum := 0.0
		for _, v := range vt.Out.Data {
			sum += math.Abs(float64(v))
		}
		if sum == 0 {
			t.Errorf("vision task %d: all-zero output frame", task.Seq)
		}
	}
}

// TestAppsEndToEndRealRun is the smoke test for every workload: build the
// app, compile a heterogeneous plan, run the real concurrent engine, and
// validate each completed task's output via a final-stage hook (the
// engine owns its TaskObjects, so the hook is where outputs are visible).
func TestAppsEndToEndRealRun(t *testing.T) {
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		t.Fatal(err)
	}
	builds := []struct {
		name string
		mk   func() (*bt.Application, error)
	}{
		{"alexnet-sparse", func() (*bt.Application, error) { return AlexNetSparseBatch(1), nil }},
		{"octree", func() (*bt.Application, error) { return OctreeSized(2048, "uniform") }},
		{"vision", func() (*bt.Application, error) { return VisionSized(64, 48) }},
		{"alexnet-dense", func() (*bt.Application, error) { return AlexNetDense(), nil }},
	}
	for _, b := range builds {
		b := b
		t.Run(b.name, func(t *testing.T) {
			app, err := b.mk()
			if err != nil {
				t.Fatal(err)
			}
			// Hook the last stage to validate every task's output.
			var mu sync.Mutex
			validated := 0
			last := len(app.Stages) - 1
			hook := func(orig bt.KernelFunc) bt.KernelFunc {
				return func(task *bt.TaskObject, par bt.ParallelFor) {
					orig(task, par)
					mu.Lock()
					validateOutput(t, app.Name, task)
					validated++
					mu.Unlock()
				}
			}
			app.Stages[last].CPU = hook(app.Stages[last].CPU)
			app.Stages[last].GPU = hook(app.Stages[last].GPU)

			// Split stages across two classes so the run exercises real
			// chunk-to-chunk queue traffic.
			n := len(app.Stages)
			assign := make([]bt.PUClass, n)
			for i := range assign {
				if i < n/2 {
					assign[i] = bt.ClassBig
				} else {
					assign[i] = bt.ClassGPU
				}
			}
			plan, err := bt.NewPlan(app, dev, bt.Schedule{Assign: assign})
			if err != nil {
				t.Fatal(err)
			}
			tasks := 3
			if b.name == "alexnet-dense" {
				tasks = 2 // heaviest workload
			}
			r := bt.Execute(plan, bt.RunOptions{Tasks: tasks, Warmup: 0})
			if r.Err != nil {
				t.Fatal(r.Err)
			}
			if len(r.Completions) != tasks {
				t.Fatalf("completions = %d, want %d", len(r.Completions), tasks)
			}
			if validated != tasks {
				t.Fatalf("validated %d tasks, want %d", validated, tasks)
			}
		})
	}
}
