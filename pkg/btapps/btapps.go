// Package btapps exposes the paper's three evaluation workloads
// (Sec. 4.1) as ready-made bt.Applications: AlexNet-dense,
// AlexNet-sparse, and the Karras octree pipeline.
package btapps

import (
	"fmt"
	"strings"

	"bettertogether/internal/apps/alexnet"
	"bettertogether/internal/apps/octree"
	"bettertogether/internal/apps/vision"
	"bettertogether/pkg/bt"
)

// Names lists the canonical application names accepted by ByName.
var Names = []string{"alexnet-dense", "alexnet-sparse", "octree", "vision"}

// ByName constructs an evaluation application with its default
// configuration. Accepted names: "alexnet-dense", "alexnet-sparse",
// "octree", "vision" (aliases: "dense", "sparse", "tree", "camera").
func ByName(name string) (*bt.Application, error) {
	switch strings.ToLower(name) {
	case "alexnet-dense", "dense", "cifar-d":
		return AlexNetDense(), nil
	case "alexnet-sparse", "sparse", "cifar-s":
		return AlexNetSparse(), nil
	case "octree", "tree", "octree-uniform":
		return Octree(), nil
	case "vision", "camera":
		return Vision()
	default:
		return nil, fmt.Errorf("btapps: unknown application %q (have %v)", name, Names)
	}
}

// AlexNetDense is the dense CNN: nine stages, one CIFAR-scale image per
// task, regular dense linear algebra.
func AlexNetDense() *bt.Application {
	return alexnet.NewDense(alexnet.DefaultSeed, 1)
}

// AlexNetSparse is the Condensa-style pruned variant: CSR weights,
// batched tasks, irregular sparse linear algebra.
func AlexNetSparse() *bt.Application {
	return alexnet.NewSparse(alexnet.DefaultSeed, alexnet.DefaultSparseBatch)
}

// AlexNetSparseBatch builds the sparse variant with a custom batch size,
// useful for real-engine runs where the default batch is heavy.
func AlexNetSparseBatch(batch int) *bt.Application {
	return alexnet.NewSparse(alexnet.DefaultSeed, batch)
}

// Octree is the 7-stage Karras construction pipeline over uniform
// synthetic point clouds at the evaluation's default frame size.
func Octree() *bt.Application {
	return octree.NewApplication(octree.DefaultPoints, octree.UniformGen{})
}

// Vision is the 6-stage edge camera pipeline (demosaic through
// downscale) — a fourth workload beyond the paper's three, demonstrating
// framework extensibility.
func Vision() (*bt.Application, error) {
	return vision.NewApplication(vision.DefaultWidth, vision.DefaultHeight)
}

// VisionSized builds the camera pipeline for w×h frames (must be even).
func VisionSized(w, h int) (*bt.Application, error) {
	return vision.NewApplication(w, h)
}

// OctreeSized builds the octree pipeline with a custom frame size and
// point distribution ("uniform", "clustered", "surface").
func OctreeSized(points int, distribution string) (*bt.Application, error) {
	var gen octree.Generator
	switch strings.ToLower(distribution) {
	case "", "uniform":
		gen = octree.UniformGen{}
	case "clustered", "cluster":
		gen = octree.ClusterGen{}
	case "surface":
		gen = octree.SurfaceGen{}
	default:
		return nil, fmt.Errorf("btapps: unknown distribution %q", distribution)
	}
	return octree.NewApplication(points, gen), nil
}
