package bt_test

import (
	"testing"

	"bettertogether/pkg/bt"
	"bettertogether/pkg/btapps"
)

// tinyApp builds a minimal two-stage application through the public API
// only — the exact surface a downstream user has.
func tinyApp() *bt.Application {
	kern := func(t *bt.TaskObject, par bt.ParallelFor) {
		buf := t.Payload.(*bt.UsmBuffer[float64])
		par(buf.Len(), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				buf.Data[i] += 1
			}
		})
	}
	stage := func(name string, div, irr float64) bt.Stage {
		return bt.Stage{
			Name: name, CPU: kern, GPU: kern,
			Cost: bt.CostSpec{FLOPs: 2e6, Bytes: 4e5, ParallelFraction: 0.99,
				Divergence: div, Irregularity: irr, WorkItems: 4096},
		}
	}
	return &bt.Application{
		Name:   "tiny",
		Stages: []bt.Stage{stage("regular", 0.05, 0.05), stage("irregular", 0.8, 0.8)},
		NewTask: func() *bt.TaskObject {
			buf := bt.NewUsmBuffer[float64](4096)
			return bt.NewTaskObject(buf, []bt.Syncable{buf}, nil)
		},
	}
}

func TestPublicEndToEnd(t *testing.T) {
	app := tinyApp()
	dev, err := bt.DeviceByName("pixel7a")
	if err != nil {
		t.Fatal(err)
	}
	sch, err := bt.AutoSchedule(app, dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := sch.Validate(len(app.Stages), dev.Classes()); err != nil {
		t.Fatal(err)
	}
	plan, err := bt.NewPlan(app, dev, sch)
	if err != nil {
		t.Fatal(err)
	}
	sim := bt.Simulate(plan, bt.RunOptions{Tasks: 10, Warmup: 2, Seed: 1})
	if sim.PerTask <= 0 || len(sim.Completions) != 10 {
		t.Errorf("sim result %+v", sim)
	}
	real := bt.Execute(plan, bt.RunOptions{Tasks: 5, Warmup: 1})
	if len(real.Completions) != 5 {
		t.Errorf("real completions %d", len(real.Completions))
	}
}

func TestPublicCatalog(t *testing.T) {
	devs := bt.Catalog()
	if len(devs) != 4 {
		t.Fatalf("catalog size %d", len(devs))
	}
	for _, d := range devs {
		if err := d.Validate(); err != nil {
			t.Error(err)
		}
	}
	if _, err := bt.DeviceByName("nexus"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestPublicProfilerAndOptimizer(t *testing.T) {
	app := tinyApp()
	dev, _ := bt.DeviceByName("jetson")
	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 2})
	if !tabs.Isolated.Complete() || !tabs.Heavy.Complete() {
		t.Fatal("incomplete tables")
	}
	iso := bt.Profile(app, dev, bt.Isolated, bt.ProfileConfig{Seed: 2})
	if iso.Get(0, bt.ClassBig) != tabs.Isolated.Get(0, bt.ClassBig) {
		t.Error("Profile and ProfileBoth disagree on the same seed")
	}
	opt := bt.NewOptimizer(app, dev, tabs)
	for _, strat := range []bt.Strategy{
		bt.StrategyBetterTogether, bt.StrategyLatencyOnly, bt.StrategyIsolated,
	} {
		if len(opt.Candidates(strat)) == 0 {
			t.Errorf("strategy %v: no candidates", strat)
		}
	}
}

func TestPublicUniformSchedule(t *testing.T) {
	s := bt.NewUniformSchedule(3, bt.ClassGPU)
	if len(s.Chunks()) != 1 {
		t.Error("uniform schedule malformed")
	}
}

func TestBtappsConstructors(t *testing.T) {
	for _, name := range btapps.Names {
		app, err := btapps.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if err := app.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	// Aliases resolve.
	for _, alias := range []string{"dense", "sparse", "tree", "CIFAR-D"} {
		if _, err := btapps.ByName(alias); err != nil {
			t.Errorf("alias %q rejected: %v", alias, err)
		}
	}
	if _, err := btapps.ByName("resnet"); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := btapps.OctreeSized(1024, "torus"); err == nil {
		t.Error("unknown distribution accepted")
	}
	for _, dist := range []string{"", "uniform", "clustered", "surface"} {
		app, err := btapps.OctreeSized(1024, dist)
		if err != nil || app.Validate() != nil {
			t.Errorf("distribution %q failed", dist)
		}
	}
	if btapps.AlexNetSparseBatch(2).Validate() != nil {
		t.Error("custom batch failed")
	}
}

func TestBtappsScheduleRoundTrip(t *testing.T) {
	// A ready-made workload must flow through the whole public pipeline.
	app, err := btapps.OctreeSized(2048, "uniform")
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := bt.DeviceByName("oneplus11")
	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{Seed: 4})
	opt := bt.NewOptimizer(app, dev, tabs)
	cands, tune, best, err := opt.Optimize(bt.StrategyBetterTogether,
		bt.RunOptions{Tasks: 10, Warmup: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) == 0 || tune.BestIndex < 0 {
		t.Fatal("optimization empty")
	}
	plan, err := bt.NewPlan(app, dev, best.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	r := bt.Execute(plan, bt.RunOptions{Tasks: 3, Warmup: 0})
	if len(r.Completions) != 3 {
		t.Errorf("real run completions %d", len(r.Completions))
	}
}

func TestVisionAppSchedulable(t *testing.T) {
	app, err := btapps.VisionSized(64, 64)
	if err != nil {
		t.Fatal(err)
	}
	dev, _ := bt.DeviceByName("pixel7a")
	sch, err := bt.AutoSchedule(app, dev)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := bt.NewPlan(app, dev, sch)
	if err != nil {
		t.Fatal(err)
	}
	r := bt.Execute(plan, bt.RunOptions{Tasks: 4, Warmup: 1})
	if len(r.Completions) != 4 {
		t.Errorf("vision real run completions %d", len(r.Completions))
	}
	if _, err := btapps.ByName("vision"); err != nil {
		t.Error(err)
	}
}
