// Package bt is the public API of the BetterTogether framework: an
// interference-aware scheduler for fine-grained software pipelining on
// heterogeneous SoCs (IISWC 2025).
//
// The workflow mirrors the paper's Fig. 2:
//
//	app  := ...                      // stages with CPU+GPU kernels (1)
//	dev, _ := bt.DeviceByName("pixel7a") // target system spec (2)
//	tabs := bt.ProfileBoth(app, dev, bt.ProfileConfig{}) // BT-Profiler (3)
//	opt  := bt.NewOptimizer(app, dev, tabs)              // BT-Optimizer (4)
//	cands, tune, best, _ := opt.Optimize(bt.StrategyBetterTogether, bt.RunOptions{Tasks: 30})
//	plan, _ := bt.NewPlan(app, dev, best.Schedule)       // BT-Implementer (5)
//	result := bt.Execute(plan, bt.RunOptions{Tasks: 30}) // real concurrent run
//
// or simply:
//
//	schedule, _ := bt.AutoSchedule(app, dev)
//
// Physical SoCs are unavailable in this environment, so devices are
// simulated (see DESIGN.md): Simulate runs a schedule on a
// discrete-event model of the device with interference-aware service
// times, while Execute runs the application's real Go kernels
// concurrently through the dispatcher/queue machinery of Sec. 3.4.
package bt

import (
	"context"

	"bettertogether/internal/core"
	"bettertogether/internal/metrics"
	"bettertogether/internal/pipeline"
	"bettertogether/internal/profiler"
	"bettertogether/internal/sched"
	"bettertogether/internal/soc"
	"bettertogether/internal/trace"
)

// Core abstractions (paper Sec. 3.1).
type (
	// Stage is one unit of computation with CPU and GPU kernels.
	Stage = core.Stage
	// Application is a streaming pipeline of stages plus a TaskObject
	// factory.
	Application = core.Application
	// Schedule maps stages to PU classes.
	Schedule = core.Schedule
	// Chunk is a contiguous stage run on one PU class.
	Chunk = core.Chunk
	// TaskObject carries one streaming input through the pipeline.
	TaskObject = core.TaskObject
	// UsmBuffer is a zero-copy unified memory buffer.
	UsmBuffer[T any] = core.UsmBuffer[T]
	// CostSpec describes a stage's work for the simulated SoC.
	CostSpec = core.CostSpec
	// PUClass names a processing-unit class ("big", "gpu", ...).
	PUClass = core.PUClass
	// Backend selects the CPU or GPU kernel of a stage.
	Backend = core.Backend
	// KernelFunc is one backend implementation of a stage.
	KernelFunc = core.KernelFunc
	// ParallelFor distributes an iteration space over a PU's lanes.
	ParallelFor = core.ParallelFor
	// TaskGraph is an acyclic stage graph; Linearize turns it into a
	// pipeline.
	TaskGraph = core.TaskGraph
	// ProfileTable is the stage × PU latency table.
	ProfileTable = core.ProfileTable
	// ProfileMode selects isolated or interference-heavy profiling.
	ProfileMode = core.ProfileMode
	// Syncable is implemented by buffers that participate in the
	// dispatcher's per-chunk coherence fences; UsmBuffer satisfies it.
	Syncable = core.Syncable
)

// Re-exported constants.
const (
	BackendCPU = core.BackendCPU
	BackendGPU = core.BackendGPU

	ClassBig    = core.ClassBig
	ClassMedium = core.ClassMedium
	ClassLittle = core.ClassLittle
	ClassGPU    = core.ClassGPU

	Isolated          = core.Isolated
	InterferenceHeavy = core.InterferenceHeavy
)

// NewTaskObject wraps an application payload for pipeline execution.
func NewTaskObject(payload any, buffers []Syncable, reset func(*TaskObject)) *TaskObject {
	return core.NewTaskObject(payload, buffers, reset)
}

// NewUsmBuffer allocates a zero-copy unified buffer of n elements.
func NewUsmBuffer[T any](n int) *UsmBuffer[T] { return core.NewUsmBuffer[T](n) }

// NewUniformSchedule assigns every stage to one class (the homogeneous
// baselines of Sec. 5.1).
func NewUniformSchedule(n int, pu PUClass) Schedule { return core.NewUniformSchedule(n, pu) }

// Devices (paper Sec. 4.2, simulated).
type (
	// Device is a simulated SoC.
	Device = soc.Device
	// PU is one processing-unit class model.
	PU = soc.PU
)

// Catalog returns the four evaluation platforms: Pixel 7a, OnePlus 11,
// Jetson Orin Nano, and its low-power mode.
func Catalog() []*Device { return soc.Catalog() }

// DeviceByName looks up a catalog device ("pixel7a", "oneplus11",
// "jetson", "jetson-lp").
func DeviceByName(name string) (*Device, error) { return soc.DeviceByName(name) }

// Profiling (BT-Profiler, Sec. 3.2).
type (
	// ProfileConfig controls repetitions and seeding.
	ProfileConfig = profiler.Config
	// Tables bundles both profiling modes.
	Tables = profiler.Tables
)

// Profile builds a profiling table in one mode.
func Profile(app *Application, dev *Device, mode ProfileMode, cfg ProfileConfig) *ProfileTable {
	return profiler.Profile(app, dev, mode, cfg)
}

// ProfileBoth builds isolated and interference-heavy tables.
func ProfileBoth(app *Application, dev *Device, cfg ProfileConfig) Tables {
	return profiler.ProfileBoth(app, dev, cfg)
}

// Optimization (BT-Optimizer, Sec. 3.3).
type (
	// Optimizer runs the three-level schedule optimization.
	Optimizer = sched.Optimizer
	// Strategy selects the optimization recipe.
	Strategy = sched.Strategy
	// Candidate is one ranked schedule with its prediction.
	Candidate = sched.Candidate
	// AutotuneResult reports the executed-candidate measurements.
	AutotuneResult = sched.AutotuneResult
	// Objective selects the autotuning metric (latency, energy, EDP).
	Objective = sched.Objective
)

// Strategies.
const (
	// StrategyBetterTogether is the full interference-aware recipe.
	StrategyBetterTogether = sched.BetterTogether
	// StrategyLatencyOnly ranks by latency on the interference-aware
	// table without the utilization filter.
	StrategyLatencyOnly = sched.LatencyOnlyHeavy
	// StrategyIsolated is the prior-work baseline: isolated table,
	// latency-only ranking.
	StrategyIsolated = sched.LatencyOnlyIsolated

	// ObjectiveLatency is the paper's autotuning metric.
	ObjectiveLatency = sched.ObjectiveLatency
	// ObjectiveEnergy minimizes joules per task (extension).
	ObjectiveEnergy = sched.ObjectiveEnergy
	// ObjectiveEDP minimizes the energy-delay product (extension).
	ObjectiveEDP = sched.ObjectiveEDP
)

// NewOptimizer builds an optimizer with the paper's defaults (K=20).
func NewOptimizer(app *Application, dev *Device, tabs Tables) *Optimizer {
	return sched.New(app, dev, tabs)
}

// Execution (BT-Implementer, Sec. 3.4).
type (
	// Plan is a schedule compiled against an app and device.
	Plan = pipeline.Plan
	// RunOptions configure task counts, warmup, buffering and seeding.
	RunOptions = pipeline.Options
	// RunResult reports per-task completions and steady-state latency.
	RunResult = pipeline.Result
	// Timeline collects per-stage execution spans when set as
	// RunOptions.Trace; its Gantt method renders them.
	Timeline = trace.Timeline
	// Span is one stage execution in a Timeline.
	Span = trace.Span
	// Metrics collects per-stage dispatch/service metrics, per-queue
	// occupancy and backpressure, and per-pool utilization when set as
	// RunOptions.Metrics; its Table method renders them. Build with
	// NewMetrics so it is sized and labeled for the plan.
	Metrics = metrics.Pipeline
	// LatencyHistogram is the fixed-bucket histogram behind every
	// Metrics latency figure.
	LatencyHistogram = metrics.Histogram
	// PanicError is the typed error the Real engine returns for a
	// recovered kernel panic, attributing it to chunk, stage, and task.
	PanicError = pipeline.PanicError
	// ShutdownTimeoutError reports dispatchers that failed to join
	// within RunOptions.ShutdownTimeout.
	ShutdownTimeoutError = pipeline.ShutdownTimeoutError
)

// NewPlan validates and compiles a schedule.
func NewPlan(app *Application, dev *Device, s Schedule) (*Plan, error) {
	return pipeline.NewPlan(app, dev, s)
}

// Simulate executes the plan on the device's discrete-event model
// (virtual time, deterministic) — the paper's measurement path.
func Simulate(p *Plan, opts RunOptions) RunResult { return pipeline.Simulate(p, opts) }

// Execute runs the application's real kernels concurrently through
// dispatcher goroutines and lock-free SPSC queues (wall time).
func Execute(p *Plan, opts RunOptions) RunResult { return pipeline.Execute(p, opts) }

// ExecuteContext is Execute with a lifecycle contract: canceling ctx
// drains the pipeline and joins every dispatcher (RunResult.Err carries
// ctx.Err()); kernel panics surface as *PanicError; dispatchers that
// fail to join within RunOptions.ShutdownTimeout surface as
// *ShutdownTimeoutError instead of hanging the caller.
func ExecuteContext(ctx context.Context, p *Plan, opts RunOptions) RunResult {
	return pipeline.ExecuteContext(ctx, p, opts)
}

// Engine abstraction: both execution paths behind one interface.
type (
	// Engine is the uniform execution surface over the Sim and Real
	// paths; SimEngine and RealEngine implement it. Simulate, Execute,
	// and ExecuteContext remain as convenience wrappers over it.
	Engine = pipeline.Engine
	// SimEngine executes plans on the discrete-event device model.
	SimEngine = pipeline.SimEngine
	// RealEngine executes plans with the application's actual kernels.
	RealEngine = pipeline.RealEngine
)

// EngineByName resolves an engine from its CLI name ("sim", "real").
func EngineByName(name string) (Engine, error) { return pipeline.ByName(name) }

// NewMetrics builds a metrics collector sized and labeled for the plan;
// pass it as RunOptions.Metrics to either engine and render it with its
// Table method after the run.
func NewMetrics(p *Plan) *Metrics { return pipeline.NewMetrics(p) }

// AutoSchedule is the one-call path: profile the application on the
// device, run the full three-level optimization, and return the selected
// schedule.
func AutoSchedule(app *Application, dev *Device) (Schedule, error) {
	tabs := ProfileBoth(app, dev, ProfileConfig{})
	opt := NewOptimizer(app, dev, tabs)
	_, _, best, err := opt.Optimize(StrategyBetterTogether, RunOptions{Tasks: 20, Warmup: 5})
	if err != nil {
		return Schedule{}, err
	}
	return best.Schedule, nil
}

// SaveTable writes a profiling table as JSON, for reuse across tool
// invocations (btprofile -o / btsched -tables).
func SaveTable(t *ProfileTable, path string) error { return core.SaveTable(t, path) }

// LoadTable reads a JSON profiling table written by SaveTable.
func LoadTable(path string) (*ProfileTable, error) { return core.LoadTable(path) }
